//! The assembled storage service: the client-side handle that binds a
//! deployment's configuration, topology and [`Fabric`] to the server
//! roles behind a message [`Transport`].
//!
//! All server components are passive state machines guarded by mutexes
//! (see [`crate::server::ServerState`]); *clients* execute the protocol
//! logic and charge the fabric for every message and disk access around
//! those state transitions. Locks are never held across fabric calls, so
//! the same `BlobStore` works under real thread concurrency (in-process
//! mode) and under simulated concurrency (coroutine processes).
//!
//! The typed accessor methods here (`vm_*`, `pm_*`, `meta_*`,
//! `provider_*`, `board_*`, `cluster_*`) are the *entire* client→server
//! surface. Each has two paths:
//!
//! * **direct** — the transport is [`DirectTransport`] and the server
//!   state lives in this process: the method runs today's exact
//!   zero-copy code against the state machines (no message exists);
//! * **wire** — the request is encoded as a [`bff_wire::Req`] frame,
//!   carried by the transport (in-process codec round-trip or real TCP),
//!   dispatched by [`ServerState::dispatch`] on the serving side, and
//!   the decoded [`bff_wire::Resp`] is unpacked.
//!
//! Both paths acquire server-side locks with identical granularity, and
//! every *modelled* cost was already charged to the fabric by the caller
//! — so logical outcomes are transport-invariant (the
//! `cross_stack_equivalence` suite pins this).

use crate::api::{BlobConfig, BlobId, BlobTopology, ChunkDesc, ChunkId, TransportMode, Version};
use crate::api::{BlobResult, NodeKey, TreeNode};
use crate::board::{BoardService, ConfidentSequence};
use crate::cluster::ClusterIndex;
use crate::context::NodeContext;
use crate::lockstat::LockContention;
use crate::pmanager::Placement;
use crate::provider::ProviderStore;
use crate::server::ServerState;
use bff_data::{ContentKey, FastMap, FastSet, Payload};
use bff_net::transport::{
    CodecTransport, DirectTransport, FrameHandler, FrameServer, RouteKey, RouteTable,
    SocketTransport, Transport, WireStats,
};
use bff_net::{Fabric, NodeId};
use bff_wire::msg::{
    unexpected_resp, BoardReq, BoardResp, ClusterReq, ClusterResp, DeleteOutcome, MetaReq,
    MetaResp, PmReq, PmResp, ProviderReq, ProviderResp, Req, Resp, VersionInfo, VmReq, VmResp,
};
use parking_lot::{Mutex, RwLock};
use std::ops::Range;
use std::sync::Arc;

/// A deployed BlobSeer-like service, seen from the client side.
pub struct BlobStore {
    pub(crate) cfg: BlobConfig,
    pub(crate) topo: BlobTopology,
    pub(crate) fabric: Arc<dyn Fabric>,
    /// One [`NodeContext`] per compute node, created lazily: every
    /// client on a node attaches to the same shared cache module (the
    /// paper's per-node FUSE process, §4.1). Contexts are client-side
    /// state — they exist in every deployment mode, including remote.
    contexts: Mutex<FastMap<NodeId, Arc<NodeContext>>>,
    /// Client-side topology knowledge: which nodes are providers
    /// (membership checks must not require a server round trip).
    provider_set: FastSet<NodeId>,
    /// The server half, when it lives in this process (`None` for a
    /// [`BlobStore::remote`] handle talking to external processes).
    srv: Option<Arc<ServerState>>,
    /// How typed requests reach the server roles.
    transport: Arc<dyn Transport>,
    /// In-process socket mode: the listener threads serving `srv`
    /// (dropping the store stops them).
    _listeners: Vec<FrameServer>,
}

impl BlobStore {
    /// Deploy the service with the given configuration and placement.
    /// `cfg.transport` selects how requests reach the server roles (all
    /// three modes host the server state in this process).
    pub fn new(cfg: BlobConfig, topo: BlobTopology, fabric: Arc<dyn Fabric>) -> Arc<Self> {
        Self::with_placement(cfg, topo, fabric, Placement::RoundRobin)
    }

    /// Deploy with an explicit chunk-placement strategy.
    pub fn with_placement(
        cfg: BlobConfig,
        topo: BlobTopology,
        fabric: Arc<dyn Fabric>,
        placement: Placement,
    ) -> Arc<Self> {
        let srv = Arc::new(ServerState::new(&cfg, &topo, placement));
        Self::attach(cfg, topo, fabric, srv)
    }

    /// Deploy a **durable** service rooted at `data_dir`: disk-backed
    /// providers (one directory per provider node) plus the mutation
    /// journal, both replayed before the handle is returned — the
    /// in-process twin of attaching to `blob_server --data-dir`
    /// processes via [`BlobStore::remote`].
    ///
    /// Requires a message transport ([`TransportMode::Codec`] or
    /// [`TransportMode::Socket`]): journaling lives in
    /// [`ServerState::dispatch`], which the direct zero-copy accessors
    /// bypass — a direct-transport durable deployment would ack
    /// mutations without ever journaling them.
    pub fn durable(
        cfg: BlobConfig,
        topo: BlobTopology,
        fabric: Arc<dyn Fabric>,
        placement: Placement,
        data_dir: &std::path::Path,
    ) -> std::io::Result<(Arc<Self>, crate::durable::RecoveryReport)> {
        assert!(
            cfg.transport != TransportMode::Direct,
            "durable deployments need a message transport (codec/socket): \
             the direct accessors bypass dispatch and would skip the journal"
        );
        let (srv, report) = ServerState::recover(&cfg, &topo, placement, data_dir)?;
        Ok((Self::attach(cfg, topo, fabric, Arc::new(srv)), report))
    }

    /// Bind an in-process server state behind the configured transport.
    fn attach(
        cfg: BlobConfig,
        topo: BlobTopology,
        fabric: Arc<dyn Fabric>,
        srv: Arc<ServerState>,
    ) -> Arc<Self> {
        let (transport, listeners): (Arc<dyn Transport>, Vec<FrameServer>) = match cfg.transport {
            TransportMode::Direct => (Arc::new(DirectTransport), Vec::new()),
            TransportMode::Codec => {
                let state = Arc::clone(&srv);
                let handler: FrameHandler =
                    Arc::new(move |route, frame| state.handle_frame(route, frame));
                (Arc::new(CodecTransport::new(handler)), Vec::new())
            }
            TransportMode::Socket => {
                // One loopback listener per role, all serving the same
                // in-process state — the full framed-TCP path without
                // separate processes. (Multi-process deployments run
                // `blob_server` binaries and connect via
                // [`BlobStore::remote`].)
                let routes = [
                    RouteKey::Vm,
                    RouteKey::Pm,
                    RouteKey::Board,
                    RouteKey::Cluster,
                    RouteKey::Meta(0),
                    RouteKey::Provider(topo.providers[0]),
                ];
                let listeners: Vec<FrameServer> = routes
                    .into_iter()
                    .map(|route| {
                        let state = Arc::clone(&srv);
                        let handler: FrameHandler =
                            Arc::new(move |route, frame| state.handle_frame(route, frame));
                        FrameServer::start(route, handler).expect("bind loopback listener")
                    })
                    .collect();
                let table = RouteTable {
                    vm: listeners[0].addr(),
                    pm: listeners[1].addr(),
                    board: listeners[2].addr(),
                    cluster: listeners[3].addr(),
                    meta: listeners[4].addr(),
                    provider: listeners[5].addr(),
                };
                (Arc::new(SocketTransport::new(table)), listeners)
            }
        };
        Arc::new(Self {
            provider_set: topo.providers.iter().copied().collect(),
            contexts: Mutex::new(FastMap::default()),
            srv: Some(srv),
            transport,
            _listeners: listeners,
            cfg,
            topo,
            fabric,
        })
    }

    /// Attach to a cluster whose server roles run in *other* processes,
    /// reached through `transport` (normally a
    /// [`SocketTransport`] built from the `READY` lines the
    /// `blob_server` processes print). The handle holds no server state;
    /// local-diagnostic accessors ([`BlobStore::providers`],
    /// [`BlobStore::pattern_board`], …) panic on it.
    pub fn remote(
        cfg: BlobConfig,
        topo: BlobTopology,
        fabric: Arc<dyn Fabric>,
        transport: Arc<dyn Transport>,
    ) -> Arc<Self> {
        assert!(
            !transport.is_direct(),
            "a direct transport needs in-process server state; use BlobStore::new"
        );
        Arc::new(Self {
            provider_set: topo.providers.iter().copied().collect(),
            contexts: Mutex::new(FastMap::default()),
            srv: None,
            transport,
            _listeners: Vec::new(),
            cfg,
            topo,
            fabric,
        })
    }

    /// The in-process server state when the transport dispatches typed
    /// values directly — the zero-copy fast path every accessor below
    /// takes first.
    #[inline]
    fn direct(&self) -> Option<&ServerState> {
        if self.transport.is_direct() {
            self.srv.as_deref()
        } else {
            None
        }
    }

    /// The in-process server state regardless of transport (codec and
    /// in-process socket modes still host it here). `None` only for
    /// [`BlobStore::remote`] handles.
    fn local(&self) -> &ServerState {
        self.srv
            .as_deref()
            .expect("server state lives in another process (remote BlobStore handle)")
    }

    /// One encoded round trip over the transport.
    fn call(&self, req: Req) -> BlobResult<Resp> {
        let frame = bff_wire::encode(&req);
        let reply = self.transport.call(req.route(), &frame)?;
        Ok(bff_wire::decode::<Resp>(&reply)?)
    }

    /// Real serialized bytes the transport has moved (all zeros under
    /// the direct transport — no frame ever exists).
    pub fn wire_stats(&self) -> WireStats {
        self.transport.wire_stats()
    }

    /// Whether `node` hosts a chunk provider in this deployment.
    #[inline]
    pub(crate) fn is_provider(&self, node: NodeId) -> bool {
        self.provider_set.contains(&node)
    }

    /// Number of metadata shards (hash-partition count).
    #[inline]
    pub(crate) fn meta_shards(&self) -> usize {
        self.topo.metadata.len()
    }

    // -----------------------------------------------------------------
    // Version manager.
    // -----------------------------------------------------------------

    pub(crate) fn vm_create_blob(&self, size: u64, chunk_size: u64) -> BlobResult<BlobId> {
        if let Some(srv) = self.direct() {
            return srv.vmanager.lock().create_blob(size, chunk_size);
        }
        match self.call(Req::Vm(VmReq::CreateBlob { size, chunk_size }))? {
            Resp::Vm(VmResp::Created(r)) => r,
            _ => Err(unexpected_resp()),
        }
    }

    pub(crate) fn vm_clone_blob(&self, src: BlobId, version: Version) -> BlobResult<BlobId> {
        if let Some(srv) = self.direct() {
            return srv.vmanager.lock().clone_blob(src, version);
        }
        match self.call(Req::Vm(VmReq::CloneBlob { src, version }))? {
            Resp::Vm(VmResp::Cloned(r)) => r,
            _ => Err(unexpected_resp()),
        }
    }

    pub(crate) fn vm_latest(&self, blob: BlobId) -> BlobResult<Version> {
        if let Some(srv) = self.direct() {
            return Ok(srv.vmanager.lock().meta(blob)?.latest());
        }
        match self.call(Req::Vm(VmReq::Latest(blob)))? {
            Resp::Vm(VmResp::Latest(r)) => r,
            _ => Err(unexpected_resp()),
        }
    }

    pub(crate) fn vm_size(&self, blob: BlobId) -> BlobResult<u64> {
        if let Some(srv) = self.direct() {
            return Ok(srv.vmanager.lock().meta(blob)?.size);
        }
        match self.call(Req::Vm(VmReq::Size(blob)))? {
            Resp::Vm(VmResp::Size(r)) => r,
            _ => Err(unexpected_resp()),
        }
    }

    pub(crate) fn vm_live_snapshots(&self, blob: BlobId) -> BlobResult<Vec<Version>> {
        if let Some(srv) = self.direct() {
            return srv.vmanager.lock().live_snapshots(blob);
        }
        match self.call(Req::Vm(VmReq::LiveSnapshots(blob)))? {
            Resp::Vm(VmResp::LiveSnapshots(r)) => r,
            _ => Err(unexpected_resp()),
        }
    }

    pub(crate) fn vm_version_meta(
        &self,
        blob: BlobId,
        version: Version,
    ) -> BlobResult<VersionInfo> {
        if let Some(srv) = self.direct() {
            let vm = srv.vmanager.lock();
            let meta = vm.meta(blob)?;
            let root = meta
                .root(version)
                .ok_or(crate::api::BlobError::NoSuchVersion(blob, version))?;
            return Ok(VersionInfo {
                root,
                size: meta.size,
                chunk_size: meta.chunk_size,
                span: meta.span,
            });
        }
        match self.call(Req::Vm(VmReq::VersionMeta(blob, version)))? {
            Resp::Vm(VmResp::VersionMeta(r)) => r,
            _ => Err(unexpected_resp()),
        }
    }

    pub(crate) fn vm_publish(
        &self,
        blob: BlobId,
        base: Version,
        root: NodeKey,
    ) -> BlobResult<Version> {
        if let Some(srv) = self.direct() {
            return srv.vmanager.lock().publish(blob, base, root);
        }
        match self.call(Req::Vm(VmReq::Publish { blob, base, root }))? {
            Resp::Vm(VmResp::Published(r)) => r,
            _ => Err(unexpected_resp()),
        }
    }

    pub(crate) fn vm_delete_snapshots(
        &self,
        blob: BlobId,
        versions: &[Version],
    ) -> BlobResult<DeleteOutcome> {
        if let Some(srv) = self.direct() {
            // Compound under ONE lock: the delete and the live-root
            // frontier snapshot are one atomic critical section.
            let mut vm = srv.vmanager.lock();
            let dead_roots = vm.delete_snapshots(blob, versions)?;
            let live_roots = vm.family_live_roots(blob)?;
            let span = vm.meta(blob)?.span;
            return Ok(DeleteOutcome {
                dead_roots,
                live_roots,
                span,
            });
        }
        match self.call(Req::Vm(VmReq::DeleteSnapshots {
            blob,
            versions: versions.to_vec(),
        }))? {
            Resp::Vm(VmResp::Deleted(r)) => r,
            _ => Err(unexpected_resp()),
        }
    }

    pub(crate) fn vm_reserve_keys(&self, n: u64) -> BlobResult<Range<u64>> {
        if let Some(srv) = self.direct() {
            return Ok(srv.vmanager.lock().reserve_keys(n));
        }
        match self.call(Req::Vm(VmReq::ReserveKeys(n)))? {
            Resp::Vm(VmResp::Reserved(r)) => Ok(r),
            _ => Err(unexpected_resp()),
        }
    }

    // -----------------------------------------------------------------
    // Provider manager.
    // -----------------------------------------------------------------

    pub(crate) fn pm_allocate(
        &self,
        n: usize,
        chunk_bytes: u64,
        replication: usize,
        down: Vec<bool>,
    ) -> BlobResult<Vec<ChunkDesc>> {
        if let Some(srv) = self.direct() {
            return srv
                .pmanager
                .lock()
                .allocate_avoiding(n, chunk_bytes, replication, &down);
        }
        match self.call(Req::Pm(PmReq::Allocate {
            n,
            chunk_bytes,
            replication,
            down,
        }))? {
            Resp::Pm(PmResp::Allocated(r)) => r,
            _ => Err(unexpected_resp()),
        }
    }

    // -----------------------------------------------------------------
    // Metadata shards. One message = one shard-lock acquisition for the
    // whole batch (the "one metadata round per level" pattern).
    // -----------------------------------------------------------------

    pub(crate) fn meta_read_nodes(
        &self,
        shard: usize,
        keys: Vec<NodeKey>,
    ) -> BlobResult<Vec<TreeNode>> {
        if let Some(srv) = self.direct() {
            let part = srv.meta[shard].lock();
            return keys.into_iter().map(|k| part.get(k)).collect();
        }
        match self.call(Req::Meta {
            shard: shard as u32,
            req: MetaReq::ReadNodes(keys),
        })? {
            Resp::Meta(MetaResp::Nodes(r)) => r,
            _ => Err(unexpected_resp()),
        }
    }

    pub(crate) fn meta_write_nodes(
        &self,
        shard: usize,
        nodes: Vec<(NodeKey, TreeNode)>,
    ) -> BlobResult<()> {
        if let Some(srv) = self.direct() {
            srv.meta[shard].lock().put(nodes);
            return Ok(());
        }
        match self.call(Req::Meta {
            shard: shard as u32,
            req: MetaReq::WriteNodes(nodes),
        })? {
            Resp::Meta(MetaResp::Written) => Ok(()),
            _ => Err(unexpected_resp()),
        }
    }

    // -----------------------------------------------------------------
    // Chunk providers. Batched messages hold the provider's shard lock
    // once; per-item messages once per message.
    // -----------------------------------------------------------------

    pub(crate) fn provider_put(
        &self,
        prov: NodeId,
        items: Vec<(ChunkId, Payload)>,
    ) -> BlobResult<bool> {
        if let Some(srv) = self.direct() {
            return Ok(srv.providers.put_batch(prov, items));
        }
        match self.call(Req::Provider {
            node: prov,
            req: ProviderReq::Put(items),
        })? {
            Resp::Provider(ProviderResp::Put(ok)) => Ok(ok),
            _ => Err(unexpected_resp()),
        }
    }

    pub(crate) fn provider_fetch(
        &self,
        prov: NodeId,
        ids: Vec<ChunkId>,
    ) -> BlobResult<Vec<Option<(Payload, bool)>>> {
        if let Some(srv) = self.direct() {
            return Ok(match srv.providers.lock(prov) {
                Some(mut p) => ids.into_iter().map(|id| p.get(id)).collect(),
                None => vec![None; ids.len()],
            });
        }
        match self.call(Req::Provider {
            node: prov,
            req: ProviderReq::Fetch(ids),
        })? {
            Resp::Provider(ProviderResp::Fetched(r)) => Ok(r),
            _ => Err(unexpected_resp()),
        }
    }

    /// Inspect a chunk without touching read-cache state. A transport
    /// failure reads as "absent", which the dedup validation path treats
    /// as a stale hit — conservative and safe.
    pub(crate) fn provider_peek(&self, prov: NodeId, id: ChunkId) -> Option<Payload> {
        if let Some(srv) = self.direct() {
            return srv.providers.lock(prov).and_then(|p| p.peek(id));
        }
        match self.call(Req::Provider {
            node: prov,
            req: ProviderReq::Peek(id),
        }) {
            Ok(Resp::Provider(ProviderResp::Peeked(r))) => r,
            _ => None,
        }
    }

    /// Bump a chunk's refcount. A transport failure reads as "not
    /// retained" — the commit then pushes fresh bytes instead of
    /// committing by reference, which is always safe.
    pub(crate) fn provider_retain(&self, prov: NodeId, id: ChunkId) -> bool {
        if let Some(srv) = self.direct() {
            return srv.providers.retain(prov, id);
        }
        matches!(
            self.call(Req::Provider {
                node: prov,
                req: ProviderReq::Retain(id),
            }),
            Ok(Resp::Provider(ProviderResp::Retained(true)))
        )
    }

    /// Drop one reference (rollback path). A transport failure is a
    /// bounded leak — identical to skipping a down provider.
    pub(crate) fn provider_release(&self, prov: NodeId, id: ChunkId) -> bool {
        if let Some(srv) = self.direct() {
            return srv.providers.release(prov, id);
        }
        matches!(
            self.call(Req::Provider {
                node: prov,
                req: ProviderReq::Release(id),
            }),
            Ok(Resp::Provider(ProviderResp::Released(true)))
        )
    }

    /// Drop `n` references and report `(bytes_freed, removed, dropped)`
    /// (snapshot GC). Transport failure → `(0, false, false)`, the same
    /// bounded-leak semantics as an unreachable provider.
    pub(crate) fn provider_release_counted(
        &self,
        prov: NodeId,
        id: ChunkId,
        n: u64,
    ) -> (u64, bool, bool) {
        if let Some(srv) = self.direct() {
            return srv.providers.release_counted(prov, id, n);
        }
        match self.call(Req::Provider {
            node: prov,
            req: ProviderReq::ReleaseCounted(id, n),
        }) {
            Ok(Resp::Provider(ProviderResp::ReleaseCounted(r))) => r,
            _ => (0, false, false),
        }
    }

    // -----------------------------------------------------------------
    // Pattern board. All best-effort: a transport failure reads as "the
    // board knows nothing", which only costs prefetch opportunity.
    // -----------------------------------------------------------------

    pub(crate) fn board_novel_of(
        &self,
        key: (BlobId, Version),
        batch: &[u64],
        min_publishers: usize,
    ) -> Vec<u64> {
        if let Some(srv) = self.direct() {
            return srv.pattern_board.novel_of(key, batch, min_publishers);
        }
        match self.call(Req::Board(BoardReq::NovelOf {
            key,
            batch: batch.to_vec(),
            min_publishers,
        })) {
            Ok(Resp::Board(BoardResp::Novel(r))) => r,
            _ => Vec::new(),
        }
    }

    pub(crate) fn board_merge(
        &self,
        key: (BlobId, Version),
        publisher: NodeId,
        batch: &[u64],
    ) -> usize {
        if let Some(srv) = self.direct() {
            return srv.pattern_board.merge(key, publisher, batch);
        }
        match self.call(Req::Board(BoardReq::Merge {
            key,
            publisher,
            batch: batch.to_vec(),
        })) {
            Ok(Resp::Board(BoardResp::Merged(n))) => n,
            _ => 0,
        }
    }

    pub(crate) fn board_sequence_len(&self, key: (BlobId, Version)) -> usize {
        if let Some(srv) = self.direct() {
            return srv.pattern_board.sequence_len(key);
        }
        match self.call(Req::Board(BoardReq::SequenceLen(key))) {
            Ok(Resp::Board(BoardResp::SequenceLen(n))) => n,
            _ => 0,
        }
    }

    pub(crate) fn board_sequence(
        &self,
        key: (BlobId, Version),
        min_publishers: usize,
    ) -> Option<ConfidentSequence> {
        if let Some(srv) = self.direct() {
            // Zero-copy: the merged sequence stays shared by refcount.
            return srv
                .pattern_board
                .sequence_with_confidence(key, min_publishers);
        }
        match self.call(Req::Board(BoardReq::Sequence {
            key,
            min_publishers,
        })) {
            Ok(Resp::Board(BoardResp::Sequence(Some((seq, conf))))) => Some((Arc::new(seq), conf)),
            _ => None,
        }
    }

    /// Snapshot-GC hygiene on the board/cluster host: drop the deleted
    /// versions' patterns and evict freed chunks from the cluster index.
    /// Returns evicted cluster-index entries (0 on transport failure —
    /// stale entries self-heal at their next validated use).
    pub(crate) fn board_purge(
        &self,
        versions: &[(BlobId, Version)],
        freed: &FastSet<ChunkId>,
    ) -> usize {
        if let Some(srv) = self.direct() {
            for &key in versions {
                srv.pattern_board.drop_pattern(key);
            }
            if freed.is_empty() {
                return 0;
            }
            return srv.cluster_write().evict_chunks(freed);
        }
        let mut freed: Vec<ChunkId> = freed.iter().copied().collect();
        freed.sort_unstable(); // deterministic frame bytes
        match self.call(Req::Board(BoardReq::Purge {
            keys: versions.to_vec(),
            freed,
        })) {
            Ok(Resp::Board(BoardResp::Purged(n))) => n,
            _ => 0,
        }
    }

    // -----------------------------------------------------------------
    // Cluster dedup index. Best-effort like every index update: a
    // transport failure reads as a miss / skipped publish.
    // -----------------------------------------------------------------

    /// Batch probe: one shared-lock acquisition for all keys. Transport
    /// failure → all misses.
    pub(crate) fn cluster_get(&self, keys: &[ContentKey]) -> Vec<Option<ChunkDesc>> {
        if let Some(srv) = self.direct() {
            let index = srv.cluster_read();
            return keys.iter().map(|k| index.get(k)).collect();
        }
        match self.call(Req::Cluster(ClusterReq::Get(keys.to_vec()))) {
            Ok(Resp::Cluster(ClusterResp::Got(r))) if r.len() == keys.len() => r,
            _ => vec![None; keys.len()],
        }
    }

    /// Coarse-ablation probe: one *exclusive* acquisition for one key.
    pub(crate) fn cluster_get_exclusive(&self, key: &ContentKey) -> Option<ChunkDesc> {
        if let Some(srv) = self.direct() {
            return srv.cluster_write().get(key);
        }
        match self.call(Req::Cluster(ClusterReq::GetExclusive(*key))) {
            Ok(Resp::Cluster(ClusterResp::GotOne(r))) => r,
            _ => None,
        }
    }

    /// Which keys the index does not yet hold. Transport failure → no
    /// keys are novel (the publish is skipped, content stays node-local).
    pub(crate) fn cluster_novel_of(&self, keys: &[ContentKey]) -> Vec<ContentKey> {
        if let Some(srv) = self.direct() {
            return srv.cluster_read().novel_of(keys.iter());
        }
        match self.call(Req::Cluster(ClusterReq::NovelOf(keys.to_vec()))) {
            Ok(Resp::Cluster(ClusterResp::Novel(r))) => r,
            _ => Vec::new(),
        }
    }

    /// Record novel entries: one exclusive acquisition for the batch.
    pub(crate) fn cluster_record(&self, entries: Vec<(ContentKey, ChunkDesc)>) {
        if let Some(srv) = self.direct() {
            let mut index = srv.cluster_write();
            for (key, desc) in entries {
                index.record(key, desc);
            }
            return;
        }
        let _ = self.call(Req::Cluster(ClusterReq::Record(entries)));
    }

    /// Drop a stale entry wherever it lives.
    pub(crate) fn cluster_forget(&self, key: &ContentKey) {
        if let Some(srv) = self.direct() {
            srv.cluster_write().forget(key);
            return;
        }
        let _ = self.call(Req::Cluster(ClusterReq::Forget(*key)));
    }

    // -----------------------------------------------------------------
    // Client-side shared state and diagnostics.
    // -----------------------------------------------------------------

    /// The shared cache module of `node` (created on first use). All
    /// clients co-located on a node attach to the same context, sharing
    /// its descriptor cache and content-digest index.
    pub fn node_context(&self, node: NodeId) -> Arc<NodeContext> {
        Arc::clone(
            self.contexts
                .lock()
                .entry(node)
                .or_insert_with(|| Arc::new(NodeContext::new(&self.cfg))),
        )
    }

    /// The cluster access-pattern board (diagnostics; the data plane
    /// goes through [`crate::Client`]). Requires in-process server state.
    pub fn pattern_board(&self) -> &BoardService {
        &self.local().pattern_board
    }

    /// The cluster-wide dedup index (diagnostics; the data plane goes
    /// through [`crate::Client::write_chunks`]). Requires in-process
    /// server state.
    pub fn cluster_index(&self) -> &RwLock<ClusterIndex> {
        &self.local().cluster_index
    }

    /// Contention counters of the cluster-index lock.
    pub fn cluster_contention(&self) -> LockContention {
        self.local().cluster_contention()
    }

    /// Cluster-wide eviction after a snapshot delete: drop the deleted
    /// versions' pattern/descriptor state and every cached trace of the
    /// freed chunks from the cluster index and all node contexts. The
    /// caller (the deleting client) charges the gossip that carries
    /// these evictions; the state change itself is the replicas
    /// converging.
    pub(crate) fn purge_deleted(&self, versions: &[(BlobId, Version)], freed: &FastSet<ChunkId>) {
        // Server side (board host): patterns + cluster-index entries.
        self.board_purge(versions, freed);
        // Client side: every local node context drops its cached traces.
        let contexts: Vec<Arc<NodeContext>> = self.contexts.lock().values().cloned().collect();
        for ctx in contexts {
            for &key in versions {
                ctx.purge_version(key);
            }
            if !freed.is_empty() {
                ctx.purge_chunks(freed);
            }
        }
    }

    /// Service configuration.
    pub fn config(&self) -> &BlobConfig {
        &self.cfg
    }

    /// Service placement.
    pub fn topology(&self) -> &BlobTopology {
        &self.topo
    }

    /// The fabric this service charges.
    pub fn fabric(&self) -> &Arc<dyn Fabric> {
        &self.fabric
    }

    /// The deployed provider set (chunk stores, refcounts, loads).
    /// Requires in-process server state.
    pub fn providers(&self) -> &ProviderStore {
        &self.local().providers
    }

    /// Durability counters for this deployment: fsyncs issued, acks
    /// covered, the acks-per-fsync batching ratio, and the worst
    /// group-commit ticket wait. All-zero for non-durable deployments.
    /// Requires in-process server state.
    pub fn durability(&self) -> crate::durable::DurabilityCounters {
        self.local().durability()
    }

    /// Total chunk payload bytes stored across all providers. Shared
    /// chunks are stored once, so this is the paper's storage-space
    /// metric: snapshots that share content do not multiply it.
    /// Lock-free: maintained by the sharded store's atomic counters.
    pub fn total_stored_bytes(&self) -> u64 {
        self.local().providers.total_stored_bytes()
    }

    /// Total chunks stored across all providers (lock-free).
    pub fn total_chunks(&self) -> usize {
        self.local().providers.total_chunks()
    }

    /// Total metadata tree nodes stored.
    pub fn total_metadata_nodes(&self) -> usize {
        self.local()
            .meta
            .iter()
            .map(|m| m.lock().node_count())
            .sum()
    }

    /// Per-provider stored bytes, in `topology().providers` order
    /// (balance diagnostics).
    pub fn provider_loads(&self) -> Vec<u64> {
        self.local().providers.loads()
    }

    /// Drop all simulated page caches (ablations).
    pub fn drop_provider_caches(&self) {
        self.local().providers.drop_caches();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bff_net::{LocalFabric, NodeId};

    #[test]
    fn deploy_shapes_match_topology() {
        let fabric = LocalFabric::new(6);
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        let topo = BlobTopology::colocated(&nodes, NodeId(5));
        let store = BlobStore::new(BlobConfig::default(), topo, fabric);
        assert_eq!(store.providers().len(), 4);
        assert_eq!(store.meta_shards(), 4);
        assert_eq!(store.total_stored_bytes(), 0);
        assert_eq!(store.total_metadata_nodes(), 0);
    }

    #[test]
    fn node_contexts_shared_per_node() {
        let fabric = LocalFabric::new(3);
        let nodes: Vec<NodeId> = (0..2).map(NodeId).collect();
        let topo = BlobTopology::colocated(&nodes, NodeId(2));
        let store = BlobStore::new(BlobConfig::default(), topo, fabric);
        let a = store.node_context(NodeId(0));
        let b = store.node_context(NodeId(0));
        let c = store.node_context(NodeId(1));
        assert!(Arc::ptr_eq(&a, &b), "same node → same shared context");
        assert!(!Arc::ptr_eq(&a, &c), "different nodes stay isolated");
    }

    #[test]
    #[should_panic(expected = "provider")]
    fn empty_provider_set_rejected() {
        let fabric = LocalFabric::new(1);
        let topo = BlobTopology {
            vmanager: NodeId(0),
            pmanager: NodeId(0),
            metadata: vec![NodeId(0)],
            providers: vec![],
        };
        BlobStore::new(BlobConfig::default(), topo, fabric);
    }

    #[test]
    fn codec_transport_round_trips_requests() {
        let fabric = LocalFabric::new(3);
        let nodes: Vec<NodeId> = (0..2).map(NodeId).collect();
        let topo = BlobTopology::colocated(&nodes, NodeId(2));
        let cfg = BlobConfig {
            transport: crate::api::TransportMode::Codec,
            ..Default::default()
        };
        let store = BlobStore::new(cfg, topo, fabric);
        let blob = store.vm_create_blob(1024, 256).unwrap();
        assert_eq!(store.vm_latest(blob).unwrap(), Version(0));
        let stats = store.wire_stats();
        assert_eq!(stats.calls, 2);
        assert!(stats.bytes_sent > 0 && stats.bytes_received > 0);
    }

    #[test]
    fn socket_transport_round_trips_requests() {
        let fabric = LocalFabric::new(3);
        let nodes: Vec<NodeId> = (0..2).map(NodeId).collect();
        let topo = BlobTopology::colocated(&nodes, NodeId(2));
        let cfg = BlobConfig {
            transport: crate::api::TransportMode::Socket,
            ..Default::default()
        };
        let store = BlobStore::new(cfg, topo, fabric);
        let blob = store.vm_create_blob(4096, 512).unwrap();
        assert_eq!(store.vm_size(blob).unwrap(), 4096);
        assert!(store.wire_stats().calls == 2);
    }
}
