//! The BlobSeer client: the protocol logic executed by compute nodes.
//!
//! Reads descend the distributed segment tree (batched per level, cached
//! locally — tree nodes are immutable, so caching is trivially coherent)
//! and then fetch the covered chunks *in parallel* from their providers,
//! which is what distributes the I/O workload under the multideployment
//! pattern (§3.1.3). Writes allocate providers round-robin, push chunks in
//! parallel, shadow the metadata tree, and publish the new snapshot at the
//! version manager.

use crate::api::{
    BlobConfig, BlobError, BlobId, BlobResult, ChunkDesc, NodeKey, TreeNode, Version,
};
use crate::meta::partition_of;
use crate::segtree::{self, NodeIo};
use crate::service::BlobStore;
use bff_data::{chunk_cover, chunk_range, intersect, Payload};
use bff_net::{NetError, NodeId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

/// Cached per-(blob, version) metadata.
#[derive(Debug, Clone, Copy)]
struct VersionMeta {
    root: NodeKey,
    size: u64,
    chunk_size: u64,
    span: u64,
}

/// A client handle bound to one cluster node.
#[derive(Clone)]
pub struct Client {
    store: Arc<BlobStore>,
    node: NodeId,
    version_cache: Arc<Mutex<HashMap<(BlobId, Version), VersionMeta>>>,
    node_cache: Arc<Mutex<HashMap<NodeKey, TreeNode>>>,
}

impl Client {
    /// Create a client for the process running on `node`.
    pub fn new(store: Arc<BlobStore>, node: NodeId) -> Self {
        Self {
            store,
            node,
            version_cache: Arc::new(Mutex::new(HashMap::new())),
            node_cache: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The node this client runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The service this client talks to.
    pub fn store(&self) -> &Arc<BlobStore> {
        &self.store
    }

    fn cfg(&self) -> &BlobConfig {
        self.store.config()
    }

    /// Create an empty blob of `size` bytes (chunk size from config).
    pub fn create_blob(&self, size: u64) -> BlobResult<BlobId> {
        let cs = self.cfg().chunk_size;
        self.control_rpc(self.store.topo.vmanager)?;
        self.store.vmanager.lock().create_blob(size, cs)
    }

    /// CLONE: a new first-class blob sharing all content with
    /// `(src, version)` (§3.1.4).
    pub fn clone_blob(&self, src: BlobId, version: Version) -> BlobResult<BlobId> {
        self.control_rpc(self.store.topo.vmanager)?;
        self.store.vmanager.lock().clone_blob(src, version)
    }

    /// Latest published version of a blob.
    pub fn latest_version(&self, blob: BlobId) -> BlobResult<Version> {
        self.control_rpc(self.store.topo.vmanager)?;
        Ok(self.store.vmanager.lock().meta(blob)?.latest())
    }

    /// Blob logical size.
    pub fn blob_size(&self, blob: BlobId) -> BlobResult<u64> {
        self.control_rpc(self.store.topo.vmanager)?;
        Ok(self.store.vmanager.lock().meta(blob)?.size)
    }

    fn control_rpc(&self, to: NodeId) -> Result<(), NetError> {
        let c = self.cfg().control_bytes;
        self.store.fabric.rpc(self.node, to, c, c)
    }

    fn version_meta(&self, blob: BlobId, version: Version) -> BlobResult<VersionMeta> {
        if let Some(m) = self.version_cache.lock().get(&(blob, version)) {
            return Ok(*m);
        }
        self.control_rpc(self.store.topo.vmanager)?;
        let m = {
            let vm = self.store.vmanager.lock();
            let meta = vm.meta(blob)?;
            let root = meta
                .root(version)
                .ok_or(BlobError::NoSuchVersion(blob, version))?;
            VersionMeta { root, size: meta.size, chunk_size: meta.chunk_size, span: meta.span }
        };
        self.version_cache.lock().insert((blob, version), m);
        Ok(m)
    }

    /// Read `range` of `(blob, version)`. Unwritten regions read as
    /// zeros. Chunks are fetched in parallel from their providers, with
    /// replica failover.
    pub fn read(&self, blob: BlobId, version: Version, range: Range<u64>) -> BlobResult<Payload> {
        let meta = self.version_meta(blob, version)?;
        if range.start > range.end || range.end > meta.size {
            return Err(BlobError::OutOfBounds {
                offset: range.start,
                len: range.end.saturating_sub(range.start),
                size: meta.size,
            });
        }
        if range.start == range.end {
            return Ok(Payload::empty());
        }
        let cover = chunk_cover(&range, meta.chunk_size);
        let leaves = {
            let mut io = ClientNodeIo { client: self };
            segtree::collect_leaves(&mut io, meta.root, meta.span, &cover)?
        };
        // Parallel chunk fetch.
        let by_index: HashMap<u64, ChunkDesc> = leaves.into_iter().collect();
        let mut fetch: Vec<(u64, ChunkDesc, u64)> = Vec::new(); // (idx, desc, len)
        for idx in cover.clone() {
            if let Some(desc) = by_index.get(&idx) {
                let cr = chunk_range(idx, meta.chunk_size, meta.size);
                fetch.push((idx, desc.clone(), cr.end - cr.start));
            }
        }
        let results: Arc<Mutex<Vec<Option<BlobResult<Payload>>>>> =
            Arc::new(Mutex::new(vec![None; fetch.len()]));
        let tasks: Vec<Box<dyn FnOnce() + Send + 'static>> = fetch
            .iter()
            .enumerate()
            .map(|(slot, (_, desc, len))| {
                let store = Arc::clone(&self.store);
                let results = Arc::clone(&results);
                let desc = desc.clone();
                let (me, len) = (self.node, *len);
                Box::new(move || {
                    let r = fetch_chunk(&store, me, &desc, len);
                    results.lock()[slot] = Some(r);
                }) as Box<dyn FnOnce() + Send + 'static>
            })
            .collect();
        self.store.fabric.par_join(tasks);

        // Assemble, zero-filling unwritten chunks.
        let fetched = Arc::try_unwrap(results)
            .unwrap_or_else(|a| Mutex::new(a.lock().clone()))
            .into_inner();
        let mut by_idx_payload: HashMap<u64, Payload> = HashMap::with_capacity(fetch.len());
        for ((idx, _, _), res) in fetch.iter().zip(fetched) {
            let payload = res.expect("task ran")?;
            by_idx_payload.insert(*idx, payload);
        }
        let mut out = Payload::empty();
        for idx in cover {
            let cr = chunk_range(idx, meta.chunk_size, meta.size);
            let want = intersect(&cr, &range);
            if want.start >= want.end {
                continue;
            }
            match by_idx_payload.get(&idx) {
                Some(p) => {
                    debug_assert_eq!(p.len(), cr.end - cr.start, "stored chunk length");
                    out.append(p.slice(want.start - cr.start, want.end - cr.start));
                }
                None => out.append(Payload::zeros(want.end - want.start)),
            }
        }
        debug_assert_eq!(out.len(), range.end - range.start);
        Ok(out)
    }

    /// Write `data` at `offset` on top of `(blob, base)` and publish the
    /// result as the next snapshot. Partially covered chunks are
    /// read-modify-written against the base version.
    pub fn write(
        &self,
        blob: BlobId,
        base: Version,
        offset: u64,
        data: Payload,
    ) -> BlobResult<Version> {
        let meta = self.version_meta(blob, base)?;
        let len = data.len();
        if offset + len > meta.size {
            return Err(BlobError::OutOfBounds { offset, len, size: meta.size });
        }
        if len == 0 {
            return Err(BlobError::BadInput("empty write"));
        }
        let range = offset..offset + len;
        let cover = chunk_cover(&range, meta.chunk_size);
        let mut updates: Vec<(u64, Payload)> = Vec::with_capacity((cover.end - cover.start) as usize);
        for idx in cover {
            let cr = chunk_range(idx, meta.chunk_size, meta.size);
            let part = intersect(&cr, &range);
            let piece = data.slice(part.start - offset, part.end - offset);
            let full = if part == cr {
                piece
            } else {
                // Read-modify-write against the base snapshot.
                let old = self.read(blob, base, cr.clone())?;
                old.overwrite(part.start - cr.start, piece)
            };
            updates.push((idx, full));
        }
        self.write_chunks(blob, base, updates)
    }

    /// Publish a snapshot from whole-chunk updates (the COMMIT fast path:
    /// the mirroring module gap-fills chunks locally, so every modified
    /// chunk arrives complete). `updates` maps chunk index → full chunk
    /// payload.
    pub fn write_chunks(
        &self,
        blob: BlobId,
        base: Version,
        updates: Vec<(u64, Payload)>,
    ) -> BlobResult<Version> {
        let meta = self.version_meta(blob, base)?;
        if updates.is_empty() {
            return Err(BlobError::BadInput("empty update set"));
        }
        for (idx, data) in &updates {
            let cr = chunk_range(*idx, meta.chunk_size, meta.size);
            if data.len() != cr.end - cr.start {
                return Err(BlobError::BadInput("update is not a full chunk"));
            }
        }

        // 1. Allocate chunk ids + providers (one provider-manager RPC).
        let n = updates.len();
        let c = self.cfg().control_bytes;
        self.store
            .fabric
            .rpc(self.node, self.store.topo.pmanager, c, c + 24 * n as u64)?;
        let descs = {
            let mut pm = self.store.pmanager.lock();
            pm.allocate(n, meta.chunk_size, self.cfg().replication)?
        };

        // 2. Push chunk data to providers, all chunks in parallel,
        //    replicas in sequence (chain replication would be equivalent
        //    under the fluid model).
        let errors: Arc<Mutex<Vec<BlobError>>> = Arc::new(Mutex::new(Vec::new()));
        let async_writes = self.cfg().async_writes;
        let tasks: Vec<Box<dyn FnOnce() + Send + 'static>> = updates
            .iter()
            .zip(&descs)
            .map(|((_, data), desc)| {
                let store = Arc::clone(&self.store);
                let errors = Arc::clone(&errors);
                let (desc, data, me) = (desc.clone(), data.clone(), self.node);
                Box::new(move || {
                    if let Err(e) = put_chunk(&store, me, &desc, data, async_writes) {
                        errors.lock().push(e);
                    }
                }) as Box<dyn FnOnce() + Send + 'static>
            })
            .collect();
        self.store.fabric.par_join(tasks);
        if let Some(e) = errors.lock().first() {
            return Err(e.clone());
        }

        // 3. Shadow the metadata tree.
        let update_map: HashMap<u64, ChunkDesc> = updates
            .iter()
            .map(|(i, _)| *i)
            .zip(descs.iter().cloned())
            .collect();
        let new_root = {
            let mut io = ClientNodeIo { client: self };
            segtree::build_new_tree(&mut io, meta.root, meta.span, &update_map)?
        };

        // 4. Publish at the version manager (the total-order point).
        self.control_rpc(self.store.topo.vmanager)?;
        let v = self.store.vmanager.lock().publish(blob, base, new_root)?;
        self.version_cache.lock().insert(
            (blob, v),
            VersionMeta { root: new_root, ..meta },
        );
        Ok(v)
    }

    /// Convenience: create a blob and publish `data` as `Version(1)` — the
    /// "upload image to the repository" client operation from Fig. 1.
    pub fn upload(&self, data: Payload) -> BlobResult<(BlobId, Version)> {
        let blob = self.create_blob(data.len())?;
        let v = self.write(blob, Version(0), 0, data)?;
        Ok((blob, v))
    }
}

/// Fetch one chunk with replica failover. The preferred replica is spread
/// by chunk id and reader so concurrent readers don't gang up on one copy.
fn fetch_chunk(
    store: &Arc<BlobStore>,
    me: NodeId,
    desc: &ChunkDesc,
    len: u64,
) -> BlobResult<Payload> {
    let k = desc.replicas.len();
    debug_assert!(k > 0);
    let start = (desc.id.0 as usize + me.index()) % k;
    let mut last: BlobError = BlobError::ChunkUnavailable(desc.id);
    for i in 0..k {
        let prov = desc.replicas[(start + i) % k];
        if store.fabric.is_down(prov) {
            last = BlobError::Net(NetError::NodeDown(prov));
            continue;
        }
        let got = {
            let Some(provider) = store.providers.get(&prov) else {
                last = BlobError::ChunkUnavailable(desc.id);
                continue;
            };
            provider.lock().get(desc.id)
        };
        let Some((data, hot)) = got else {
            last = BlobError::ChunkUnavailable(desc.id);
            continue;
        };
        let serve = || -> Result<(), NetError> {
            if !hot || !store.config().provider_read_cache {
                store.fabric.disk_read(prov, len)?;
            }
            store.fabric.transfer(prov, me, len)
        };
        match serve() {
            Ok(()) => {
                debug_assert_eq!(data.len(), len);
                return Ok(data);
            }
            Err(e) => last = BlobError::Net(e),
        }
    }
    Err(last)
}

/// Push one chunk to all its replicas.
fn put_chunk(
    store: &Arc<BlobStore>,
    me: NodeId,
    desc: &ChunkDesc,
    data: Payload,
    async_writes: bool,
) -> BlobResult<()> {
    let len = data.len();
    for &prov in &desc.replicas {
        store.fabric.transfer(me, prov, len)?;
        store
            .providers
            .get(&prov)
            .ok_or(BlobError::ChunkUnavailable(desc.id))?
            .lock()
            .put(desc.id, data.clone());
        if async_writes {
            store.fabric.disk_write_cached(prov, len)?;
        } else {
            store.fabric.disk_write(prov, len)?;
        }
    }
    Ok(())
}

/// Metadata I/O with client-side caching and per-shard batched RPCs.
struct ClientNodeIo<'a> {
    client: &'a Client,
}

impl ClientNodeIo<'_> {
    fn shard_count(&self) -> usize {
        self.client.store.meta.len()
    }
}

impl NodeIo for ClientNodeIo<'_> {
    fn fetch(&mut self, keys: &[NodeKey]) -> BlobResult<Vec<TreeNode>> {
        let store = &self.client.store;
        let mut out: Vec<Option<TreeNode>> = vec![None; keys.len()];
        // Serve from the client cache first (nodes are immutable).
        let mut misses: Vec<(usize, NodeKey)> = Vec::new();
        {
            let cache = self.client.node_cache.lock();
            for (i, k) in keys.iter().enumerate() {
                match cache.get(k) {
                    Some(n) => out[i] = Some(n.clone()),
                    None => misses.push((i, *k)),
                }
            }
        }
        // Group misses by shard; one RPC per shard (the "one metadata
        // round per level" batching).
        let mut by_shard: HashMap<usize, Vec<(usize, NodeKey)>> = HashMap::new();
        for (i, k) in misses {
            by_shard.entry(partition_of(k, self.shard_count())).or_default().push((i, k));
        }
        let mut shards: Vec<usize> = by_shard.keys().copied().collect();
        shards.sort_unstable(); // deterministic RPC order
        for shard in shards {
            let group = &by_shard[&shard];
            let server = store.topo.metadata[shard];
            let cfg = store.config();
            store.fabric.rpc(
                self.client.node,
                server,
                cfg.control_bytes + 8 * group.len() as u64,
                cfg.node_bytes * group.len() as u64,
            )?;
            let part = store.meta[shard].lock();
            for (i, k) in group {
                let node = part.get(*k)?;
                out[*i] = Some(node);
            }
        }
        // Fill cache.
        {
            let mut cache = self.client.node_cache.lock();
            for (i, k) in keys.iter().enumerate() {
                if let Some(n) = &out[i] {
                    cache.entry(*k).or_insert_with(|| n.clone());
                }
            }
        }
        Ok(out.into_iter().map(|o| o.expect("filled")).collect())
    }

    fn reserve(&mut self, n: u64) -> BlobResult<Range<u64>> {
        let store = &self.client.store;
        let c = store.config().control_bytes;
        store.fabric.rpc(self.client.node, store.topo.vmanager, c, c)?;
        Ok(store.vmanager.lock().reserve_keys(n))
    }

    fn store(&mut self, nodes: Vec<(NodeKey, TreeNode)>) -> BlobResult<()> {
        let store = &self.client.store;
        let mut by_shard: HashMap<usize, Vec<(NodeKey, TreeNode)>> = HashMap::new();
        for (k, n) in &nodes {
            by_shard
                .entry(partition_of(*k, self.shard_count()))
                .or_default()
                .push((*k, n.clone()));
        }
        let mut shards: Vec<usize> = by_shard.keys().copied().collect();
        shards.sort_unstable();
        for shard in shards {
            let group = by_shard.remove(&shard).expect("present");
            let server = store.topo.metadata[shard];
            let cfg = store.config();
            store.fabric.rpc(
                self.client.node,
                server,
                cfg.node_bytes * group.len() as u64,
                cfg.control_bytes,
            )?;
            store.meta[shard].lock().put(group);
        }
        // New nodes are immediately cacheable.
        let mut cache = self.client.node_cache.lock();
        for (k, n) in nodes {
            cache.insert(k, n);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::BlobTopology;
    use bff_net::{Fabric, LocalFabric};

    fn setup(nodes: u32) -> (Arc<LocalFabric>, Client) {
        let fabric = LocalFabric::new(nodes as usize + 1);
        let compute: Vec<NodeId> = (0..nodes).map(NodeId).collect();
        let topo = BlobTopology::colocated(&compute, NodeId(nodes));
        let cfg = BlobConfig { chunk_size: 128, ..Default::default() };
        let store = BlobStore::new(cfg, topo, fabric.clone() as Arc<dyn Fabric>);
        let client = Client::new(store, NodeId(0));
        (fabric, client)
    }

    #[test]
    fn upload_then_read_back() {
        let (_f, client) = setup(4);
        let data = Payload::synth(1, 0, 1000);
        let (blob, v) = client.upload(data.clone()).unwrap();
        assert_eq!(v, Version(1));
        let got = client.read(blob, v, 0..1000).unwrap();
        assert!(got.content_eq(&data));
        // Sub-range reads.
        let got = client.read(blob, v, 100..300).unwrap();
        assert!(got.content_eq(&data.slice(100, 300)));
    }

    #[test]
    fn empty_blob_reads_zeros() {
        let (_f, client) = setup(2);
        let blob = client.create_blob(500).unwrap();
        let got = client.read(blob, Version(0), 0..500).unwrap();
        assert!(got.content_eq(&Payload::zeros(500)));
    }

    #[test]
    fn unaligned_write_read_modify_writes() {
        let (_f, client) = setup(4);
        let base = Payload::synth(2, 0, 1000);
        let (blob, v1) = client.upload(base.clone()).unwrap();
        // Overwrite 50..200 (chunk size 128: spans chunks 0 and 1).
        let patch = Payload::from(vec![0xABu8; 150]);
        let v2 = client.write(blob, v1, 50, patch.clone()).unwrap();
        assert_eq!(v2, Version(2));
        let got = client.read(blob, v2, 0..1000).unwrap();
        let expect = base.overwrite(50, patch);
        assert!(got.content_eq(&expect));
        // v1 still reads the original (shadowing).
        let got1 = client.read(blob, v1, 0..1000).unwrap();
        assert!(got1.content_eq(&base));
    }

    #[test]
    fn snapshots_are_totally_ordered_and_immutable() {
        let (_f, client) = setup(3);
        let (blob, v1) = client.upload(Payload::zeros(512)).unwrap();
        let mut versions = vec![v1];
        let mut expect = vec![Payload::zeros(512)];
        for i in 0..4u64 {
            let patch = Payload::synth(100 + i, 0, 64);
            let base = *versions.last().expect("non-empty");
            let v = client.write(blob, base, i * 128, patch.clone()).unwrap();
            versions.push(v);
            let prev = expect.last().expect("non-empty").clone();
            expect.push(prev.overwrite(i * 128, patch));
        }
        for (v, e) in versions.iter().zip(&expect) {
            let got = client.read(blob, *v, 0..512).unwrap();
            assert!(got.content_eq(e), "version {v} mismatch");
        }
    }

    #[test]
    fn conflicting_write_rejected() {
        let (_f, client) = setup(2);
        let (blob, v1) = client.upload(Payload::zeros(256)).unwrap();
        client.write(blob, v1, 0, Payload::from(vec![1u8; 10])).unwrap();
        let err = client.write(blob, v1, 0, Payload::from(vec![2u8; 10])).unwrap_err();
        assert!(matches!(err, BlobError::Conflict { .. }));
    }

    #[test]
    fn clone_is_independent_and_cheap() {
        let (_f, client) = setup(4);
        let base = Payload::synth(5, 0, 1024);
        let (a, va) = client.upload(base.clone()).unwrap();
        let chunks_before = client.store().total_chunks();
        let b = client.clone_blob(a, va).unwrap();
        assert_eq!(
            client.store().total_chunks(),
            chunks_before,
            "CLONE stores no chunk data"
        );
        // Clone reads identical content.
        let got = client.read(b, Version(1), 0..1024).unwrap();
        assert!(got.content_eq(&base));
        // Diverge the clone; origin unchanged.
        let vb = client.write(b, Version(1), 0, Payload::from(vec![9u8; 100])).unwrap();
        let got_a = client.read(a, va, 0..1024).unwrap();
        assert!(got_a.content_eq(&base));
        let got_b = client.read(b, vb, 0..100).unwrap();
        assert!(got_b.content_eq(&Payload::from(vec![9u8; 100])));
    }

    #[test]
    fn commit_stores_only_differences() {
        let (_f, client) = setup(4);
        let image = Payload::synth(6, 0, 4096); // 32 chunks of 128
        let (a, va) = client.upload(image).unwrap();
        let bytes_initial = client.store().total_stored_bytes();
        assert_eq!(bytes_initial, 4096);
        let b = client.clone_blob(a, va).unwrap();
        // Dirty one chunk.
        client
            .write_chunks(b, Version(1), vec![(3, Payload::synth(7, 0, 128))])
            .unwrap();
        let bytes_after = client.store().total_stored_bytes();
        assert_eq!(bytes_after - bytes_initial, 128, "one chunk of new data only");
    }

    #[test]
    fn replication_survives_provider_failure() {
        let fabric = LocalFabric::new(5);
        let compute: Vec<NodeId> = (0..4).map(NodeId).collect();
        let topo = BlobTopology::colocated(&compute, NodeId(4));
        let cfg = BlobConfig { chunk_size: 128, replication: 2, ..Default::default() };
        let store = BlobStore::new(cfg, topo, fabric.clone() as Arc<dyn Fabric>);
        let client = Client::new(store, NodeId(0));
        let data = Payload::synth(8, 0, 1024);
        let (blob, v) = client.upload(data.clone()).unwrap();
        // Kill one provider; all chunks must still be readable.
        fabric.fail_node(NodeId(2));
        let got = client.read(blob, v, 0..1024).unwrap();
        assert!(got.content_eq(&data));
    }

    #[test]
    fn unreplicated_chunk_lost_on_failure() {
        let fabric = LocalFabric::new(3);
        let compute: Vec<NodeId> = (0..2).map(NodeId).collect();
        let topo = BlobTopology::colocated(&compute, NodeId(2));
        let cfg = BlobConfig { chunk_size: 128, replication: 1, ..Default::default() };
        let store = BlobStore::new(cfg, topo, fabric.clone() as Arc<dyn Fabric>);
        let client = Client::new(store, NodeId(0));
        let (blob, v) = client.upload(Payload::synth(9, 0, 512)).unwrap();
        fabric.fail_node(NodeId(1));
        let err = client.read(blob, v, 0..512).unwrap_err();
        assert!(matches!(err, BlobError::Net(NetError::NodeDown(_))));
    }

    #[test]
    fn out_of_bounds_rejected() {
        let (_f, client) = setup(2);
        let (blob, v) = client.upload(Payload::zeros(100)).unwrap();
        assert!(matches!(
            client.read(blob, v, 50..200),
            Err(BlobError::OutOfBounds { .. })
        ));
        assert!(matches!(
            client.write(blob, v, 90, Payload::zeros(20)),
            Err(BlobError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn metadata_nodes_shared_across_snapshots() {
        let (_f, client) = setup(4);
        // 8 chunks; snapshot twice touching one chunk each time.
        let (blob, v1) = client.upload(Payload::synth(10, 0, 1024)).unwrap();
        let nodes_v1 = client.store().total_metadata_nodes();
        client
            .write_chunks(blob, v1, vec![(0, Payload::synth(11, 0, 128))])
            .unwrap();
        let added = client.store().total_metadata_nodes() - nodes_v1;
        // span 8 -> depth 4 path (leaf + 2 inners + root).
        assert_eq!(added, 4, "path copy only: {added} nodes added");
    }
}
