//! The BlobSeer client: the protocol logic executed by compute nodes.
//!
//! Reads descend the distributed segment tree (batched per level, cached
//! locally — tree nodes are immutable, so caching is trivially coherent)
//! and then fetch the covered chunks *in parallel* from their providers,
//! which is what distributes the I/O workload under the multideployment
//! pattern (§3.1.3). Writes allocate providers round-robin (skipping
//! providers the fabric reports down), push chunks through the batched
//! replication pipeline, shadow the metadata tree, and publish the new
//! snapshot at the version manager.
//!
//! # The vectored read pipeline
//!
//! [`Client::read_multi`] is the batched data plane the mirroring module
//! drives; per-run [`Client::read`] is a thin wrapper over it. It differs
//! from a per-run read loop in three ways:
//!
//! 1. **Single descent** — all requested runs are planned in one
//!    level-by-level walk of the segment tree
//!    ([`segtree::collect_leaves_multi`]), so a plan of R runs costs at
//!    most `tree depth` metadata rounds, not `R × depth` (§3.2: metadata
//!    is accessed in parallel, grouped per level).
//! 2. **Descriptor cache** — resolved chunk descriptors are cached per
//!    `(blob, version)` in the *node-shared* [`NodeContext`] (§4.1's
//!    metadata cache lives in the per-node FUSE process, shared by every
//!    co-located VM). Snapshots are immutable, so entries never go
//!    stale; repeated boot-time reads of the same snapshot skip the
//!    metadata plane entirely — even from a different co-located client.
//!    `write_chunks` seeds the new version's entry from its base plus
//!    the published delta, and `clone_blob` carries the source entry
//!    over to the clone. Eviction is per-entry LRU, bounded by
//!    [`BlobConfig::desc_cache_versions`].
//! 3. **Per-provider batching** — the chunk fetches of the whole plan are
//!    grouped by provider and issued as one batched transfer each, with
//!    per-chunk replica failover as the fallback path.
//!
//! # The batched replication write pipeline
//!
//! [`Client::write_chunks`] is the write-side twin. The update set is
//! pushed according to [`ReplicationMode`]:
//!
//! * **Fan-out** (default) — every `(chunk, replica)` pair is grouped by
//!   destination provider; each provider receives its whole group as one
//!   batched transfer + one batched (write-back) disk write, providers in
//!   parallel. The sharded [`crate::provider::ProviderStore`] means those
//!   parallel pushes never contend on a shared lock.
//! * **Chain** — chunks sharing a replica chain are pushed once to the
//!   first replica, which forwards the batch down the chain, so the
//!   client's egress is `1×` the payload.
//! * **Sequential** — the pre-batching reference (one push per chunk,
//!   replicas in order), kept for equivalence tests and as the baseline
//!   the CI `bench-regression` gate measures against.
//!
//! All modes have *per-replica failover*: a replica that cannot take its
//! batch (down node, mid-transfer failure) is dropped from the published
//! chunk descriptor rather than failing the write; the write only errors
//! if a chunk retains no replica at all.
//!
//! # Adaptive cross-VM prefetching
//!
//! With [`BlobConfig::prefetch`] on (default; `BFF_PREFETCH=0` off),
//! the read path becomes *anticipatory*. Image layers hint their read
//! misses ([`Client::hint_access`]); the node context batches the
//! first-touch chunk order and publishes it to the cluster
//! [`crate::board::PatternBoard`] (hosted beside the provider manager,
//! gossiped to the compute nodes via a `bff_bcast` tree). A node running
//! behind its cohort — a VM that booted later, or was co-deployed with a
//! skew — computes the predicted next-chunk window off the board and
//! issues [`Client::prefetch_chunks`]: an asynchronous batched
//! read-ahead, bounded by [`BlobConfig::prefetch_window`] chunks per
//! step, that lands fetched chunks in the node-shared chunk cache.
//! `read_multi` consults that cache *before* touching providers, so a
//! predicted chunk costs the demand path nothing; the hypervisor model
//! overlaps prefetch steps with guest compute bursts, hiding the
//! transfers behind CPU time on the simulated fabric. Prefetch is
//! strictly best-effort: per-chunk replica failover like the demand
//! path, failed chunks simply stay on demand, and snapshot content is
//! byte-identical with prefetch on or off.
//!
//! # Content-addressed write dedup
//!
//! When [`BlobConfig::dedup`] is on, `write_chunks` content-addresses
//! the update set before touching the provider manager: identical
//! payloads *within* the commit collapse to one stored chunk, and
//! payloads whose `(length, digest)` already map to live replicas in the
//! node's [`NodeContext`] digest index are committed **by reference** —
//! the published leaf reuses the existing descriptor and bumps a
//! provider-side refcount instead of re-replicating the bytes. Snapshot
//! storage therefore grows with dirty *unique* bytes, not dirty bytes
//! (the write-side half of §3.1.3's dedup claim). A commit that fails to
//! publish (conflict, network) releases every reference it took;
//! releases never underflow.

use crate::api::{
    BlobConfig, BlobError, BlobId, BlobResult, ChunkDesc, ChunkId, NodeKey, ReplicationMode,
    TreeNode, Version,
};
use crate::board;
use crate::context::{ChunkOrigin, NodeContext};
use crate::meta::partition_of;
use crate::segtree::{self, NodeIo};
use crate::service::BlobStore;
use bff_data::{chunk_cover, chunk_range, intersect, ByteRange, ContentKey, Payload};
use bff_data::{FastMap, FastSet};
use bff_net::{NetError, NodeId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cached per-(blob, version) metadata (the version manager's wire
/// answer, cached verbatim).
use bff_wire::msg::VersionInfo as VersionMeta;

/// A client handle bound to one cluster node. All clients on a node
/// share that node's [`NodeContext`] (descriptor cache + digest index),
/// exactly as co-located VMs share the paper's per-node FUSE process.
#[derive(Clone)]
pub struct Client {
    store: Arc<BlobStore>,
    node: NodeId,
    ctx: Arc<NodeContext>,
    version_cache: Arc<Mutex<FastMap<(BlobId, Version), VersionMeta>>>,
    node_cache: Arc<Mutex<FastMap<NodeKey, TreeNode>>>,
    /// Diagnostic: number of `NodeIo::fetch` rounds issued (tests assert
    /// the single-descent bound; see `read_multi`).
    meta_fetch_calls: Arc<AtomicU64>,
}

impl Client {
    /// Create a client for the process running on `node`, attached to
    /// the node's shared [`NodeContext`].
    pub fn new(store: Arc<BlobStore>, node: NodeId) -> Self {
        let ctx = store.node_context(node);
        Self::with_context(store, node, ctx)
    }

    /// Create a client attached to an explicit context (tests and
    /// special deployments; [`Client::new`] is the normal path).
    pub fn with_context(store: Arc<BlobStore>, node: NodeId, ctx: Arc<NodeContext>) -> Self {
        Self {
            store,
            node,
            ctx,
            version_cache: Arc::new(Mutex::new(FastMap::default())),
            node_cache: Arc::new(Mutex::new(FastMap::default())),
            meta_fetch_calls: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The node-shared cache module this client attaches to.
    pub fn context(&self) -> &Arc<NodeContext> {
        &self.ctx
    }

    /// Number of metadata fetch rounds (`NodeIo::fetch` calls) this client
    /// has issued. Each call is one level of a segment-tree descent; the
    /// vectored read path bounds them at `tree depth` per plan.
    pub fn meta_fetch_calls(&self) -> u64 {
        self.meta_fetch_calls.load(Ordering::Relaxed)
    }

    /// The node this client runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The service this client talks to.
    pub fn store(&self) -> &Arc<BlobStore> {
        &self.store
    }

    fn cfg(&self) -> &BlobConfig {
        self.store.config()
    }

    /// Whether the adaptive prefetch pipeline is active. Requires both
    /// the feature flag *and* a chunk cache that can hold at least one
    /// chunk: without somewhere to land read-ahead data (disabled, or
    /// bounded below the chunk size so every insert self-evicts),
    /// tracking, publishing and prefetching would be pure overhead — a
    /// prefetched chunk would be fetched, dropped, and fetched again on
    /// demand.
    fn prefetch_enabled(&self) -> bool {
        let cfg = self.cfg();
        cfg.prefetch && cfg.chunk_cache_bytes >= cfg.chunk_size
    }

    /// Create an empty blob of `size` bytes (chunk size from config).
    pub fn create_blob(&self, size: u64) -> BlobResult<BlobId> {
        let cs = self.cfg().chunk_size;
        self.control_rpc(self.store.topology().vmanager)?;
        self.store.vm_create_blob(size, cs)
    }

    /// CLONE: a new first-class blob sharing all content with
    /// `(src, version)` (§3.1.4).
    pub fn clone_blob(&self, src: BlobId, version: Version) -> BlobResult<BlobId> {
        self.control_rpc(self.store.topology().vmanager)?;
        let id = self.store.vm_clone_blob(src, version)?;
        // The clone's Version(1) *is* the source tree, so the descriptor
        // cache carries over verbatim.
        if let Some(entry) = self.ctx.entry_snapshot((src, version)) {
            self.ctx.insert_entry((id, Version(1)), entry);
        }
        Ok(id)
    }

    /// Latest published version of a blob.
    pub fn latest_version(&self, blob: BlobId) -> BlobResult<Version> {
        self.control_rpc(self.store.topology().vmanager)?;
        self.store.vm_latest(blob)
    }

    /// Blob logical size.
    pub fn blob_size(&self, blob: BlobId) -> BlobResult<u64> {
        self.control_rpc(self.store.topology().vmanager)?;
        self.store.vm_size(blob)
    }

    /// The still-live (published, undeleted) snapshot versions of a
    /// blob, ascending — the set a "drop this whole lineage" caller
    /// passes to [`Client::delete_snapshots`], which rejects versions
    /// already deleted.
    pub fn live_snapshots(&self, blob: BlobId) -> BlobResult<Vec<Version>> {
        self.control_rpc(self.store.topology().vmanager)?;
        self.store.vm_live_snapshots(blob)
    }

    fn control_rpc(&self, to: NodeId) -> Result<(), NetError> {
        let c = self.cfg().control_bytes;
        self.store.fabric.rpc(self.node, to, c, c)
    }

    fn version_meta(&self, blob: BlobId, version: Version) -> BlobResult<VersionMeta> {
        if let Some(m) = self.version_cache.lock().get(&(blob, version)) {
            return Ok(*m);
        }
        self.control_rpc(self.store.topology().vmanager)?;
        let m = self.store.vm_version_meta(blob, version)?;
        self.version_cache.lock().insert((blob, version), m);
        Ok(m)
    }

    /// Read `range` of `(blob, version)`. Unwritten regions read as
    /// zeros. A thin wrapper over the vectored [`Client::read_multi`]
    /// pipeline (one-range plan), so even single-range callers get the
    /// descriptor cache and batched per-provider fetches with replica
    /// failover.
    pub fn read(&self, blob: BlobId, version: Version, range: Range<u64>) -> BlobResult<Payload> {
        Ok(self
            .read_multi(blob, version, std::slice::from_ref(&range))?
            .pop()
            .expect("one payload per range"))
    }

    /// Vectored read: fetch every range of `(blob, version)` in one
    /// batched pipeline, returning one payload per input range (unwritten
    /// regions read as zeros, like [`Client::read`]).
    ///
    /// All ranges are planned together: one segment-tree descent for the
    /// union of their chunk covers (at most `tree depth` metadata rounds
    /// total — see [`segtree::collect_leaves_multi`]), served first from
    /// the per-`(blob, version)` descriptor cache, and the chunk fetches
    /// are grouped per provider into batched transfers with per-chunk
    /// replica failover as fallback. Byte-for-byte equivalent to calling
    /// [`Client::read`] once per range; strictly cheaper in metadata
    /// rounds and per-message overheads.
    pub fn read_multi(
        &self,
        blob: BlobId,
        version: Version,
        ranges: &[ByteRange],
    ) -> BlobResult<Vec<Payload>> {
        let meta = self.version_meta(blob, version)?;
        for range in ranges {
            if range.start > range.end || range.end > meta.size {
                return Err(BlobError::OutOfBounds {
                    offset: range.start,
                    len: range.end.saturating_sub(range.start),
                    size: meta.size,
                });
            }
        }
        // Union of chunk covers, as sorted disjoint index runs.
        let mut cover_runs: Vec<Range<u64>> = ranges
            .iter()
            .filter(|r| r.start < r.end)
            .map(|r| chunk_cover(r, meta.chunk_size))
            .collect();
        cover_runs.sort_by_key(|r| r.start);
        cover_runs.dedup_by(|next, prev| {
            if next.start <= prev.end {
                prev.end = prev.end.max(next.end);
                true
            } else {
                false
            }
        });

        // Resolve descriptors: the node-shared cache first, then one
        // descent for the rest.
        let descs = self.resolve_descs(blob, version, &meta, &cover_runs)?;

        // Serve written chunks from the node-shared chunk cache first
        // (prefetched or demand-cached by any co-located client), then
        // batch-fetch the remainder from the providers. Demand fetches
        // are cached too while prefetching is on, so co-located VMs
        // share each other's fetched data exactly as they share the
        // paper's per-node module state.
        let cache_data = self.prefetch_enabled();
        let mut fetched: HashMap<u64, Payload> = HashMap::new();
        let mut fetch: Vec<(u64, ChunkDesc, u64)> = Vec::new();
        // Build the lookup plan first, then consult the cache in ONE
        // batched acquisition: per-chunk lock round trips on this path
        // are the cache's main contention cost under real concurrency
        // (`coarse_cache_locks` re-enables them for the load-sweep
        // ablation — hit/miss results are identical either way).
        let mut plan: Vec<(u64, ChunkDesc, u64)> = Vec::new();
        for run in &cover_runs {
            for idx in run.clone() {
                if let Some(desc) = descs.get(&idx) {
                    let cr = chunk_range(idx, meta.chunk_size, meta.size);
                    plan.push((idx, desc.clone(), cr.end - cr.start));
                }
            }
        }
        let cached: Vec<Option<Payload>> = if self.cfg().coarse_cache_locks {
            plan.iter()
                .map(|(_, desc, _)| self.ctx.chunk_cache_get(desc.id))
                .collect()
        } else {
            let ids: Vec<ChunkId> = plan.iter().map(|(_, desc, _)| desc.id).collect();
            self.ctx.chunk_cache_get_batch(&ids)
        };
        for ((idx, desc, len), data) in plan.into_iter().zip(cached) {
            match data {
                Some(data) => {
                    debug_assert_eq!(data.len(), len, "cached chunk length");
                    fetched.insert(idx, data);
                }
                None => fetch.push((idx, desc, len)),
            }
        }
        for (idx, res) in self.fetch_chunks_results(&fetch) {
            let data = res?;
            if cache_data {
                let id = descs.get(&idx).expect("fetched chunks have descs").id;
                self.ctx
                    .chunk_cache_insert(id, data.clone(), ChunkOrigin::Demand);
            }
            fetched.insert(idx, data);
        }

        // Assemble each requested range from chunk slices (zero-copy) and
        // zero fill.
        let mut out = Vec::with_capacity(ranges.len());
        for range in ranges {
            let mut payload = Payload::empty();
            for idx in chunk_cover(range, meta.chunk_size) {
                let cr = chunk_range(idx, meta.chunk_size, meta.size);
                let want = intersect(&cr, range);
                if want.start >= want.end {
                    continue;
                }
                match fetched.get(&idx) {
                    Some(p) => {
                        debug_assert_eq!(p.len(), cr.end - cr.start, "stored chunk length");
                        payload.append(p.slice(want.start - cr.start, want.end - cr.start));
                    }
                    None => payload.append(Payload::zeros(want.end - want.start)),
                }
            }
            debug_assert_eq!(payload.len(), range.end - range.start);
            out.push(payload);
        }
        Ok(out)
    }

    /// Access hint from the image layer: the guest on this node demanded
    /// `ranges` of `(blob, version)`. The node's [`NodeContext`] records
    /// the first-touch chunk order; once [`crate::context::PUBLISH_BATCH`]
    /// new chunks accumulate, the batch is published to the cluster
    /// [`PatternBoard`](crate::board::PatternBoard) (one control RPC to
    /// the provider-manager node, then a gossip round to the compute
    /// nodes). No-op when prefetching is off.
    ///
    /// Hints are *advisory*: they never move data and never fail — a
    /// publish that cannot reach the board (manager down) is dropped.
    pub fn hint_access(&self, blob: BlobId, version: Version, ranges: &[ByteRange]) {
        if !self.prefetch_enabled() {
            return;
        }
        let Ok(meta) = self.version_meta(blob, version) else {
            return;
        };
        let indices = ranges
            .iter()
            .filter(|r| r.start < r.end && r.end <= meta.size)
            .flat_map(|r| chunk_cover(r, meta.chunk_size));
        if let Some(batch) = self.ctx.note_accesses((blob, version), indices) {
            self.publish_pattern(blob, version, &batch);
        }
    }

    /// Publish a first-touch batch to the cluster board and gossip the
    /// update to the other compute nodes (see [`crate::board`]). The
    /// batch is first filtered against the node's gossiped board
    /// replica: indices the cohort already knows *and* has confirmed to
    /// [`BlobConfig::prefetch_min_publishers`] distinct publishers are
    /// not re-published, so once the access pattern converges and is
    /// cohort-confirmed the control plane goes quiet.
    fn publish_pattern(&self, blob: BlobId, version: Version, batch: &[u64]) {
        let min_pub = self.cfg().prefetch_min_publishers;
        let batch = self.store.board_novel_of((blob, version), batch, min_pub);
        if batch.is_empty() {
            return;
        }
        let summary_bytes = self.cfg().control_bytes + 8 * batch.len() as u64;
        if !self.charge_host_publish(summary_bytes) {
            return; // board unreachable: drop the batch, keep booting
        }
        self.store.board_merge((blob, version), self.node, &batch);
    }

    /// Pay the control round that carries a `summary_bytes`-sized
    /// update to the cluster service host beside the provider manager
    /// and — when the host is reachable — charge the gossip fan-out
    /// that disseminates it to the other compute nodes along the
    /// `bff_bcast` tree. This is the shared transport of the pattern
    /// board, the cluster dedup index and the GC eviction round.
    /// Returns whether the host took the update; callers drop their
    /// batch otherwise (every publish is best-effort).
    fn charge_host_publish(&self, summary_bytes: u64) -> bool {
        let host = self.store.topo.pmanager;
        let c = self.cfg().control_bytes;
        if self.store.fabric.is_down(host)
            || self
                .store
                .fabric
                .rpc(self.node, host, summary_bytes, c)
                .is_err()
        {
            return false;
        }
        let targets: Vec<NodeId> = self
            .store
            .topo
            .providers
            .iter()
            .copied()
            .filter(|&n| n != host && n != self.node)
            .collect();
        board::gossip_charge(&self.store.fabric, host, &targets, summary_bytes);
        true
    }

    /// Whether an asynchronous read-ahead step for `(blob, version)`
    /// could make progress: prefetching is on and the board's peer
    /// sequence extends past this node's prefetch cursor. Pure local
    /// state — no fabric charges — so the hypervisor can poll it before
    /// every guest compute burst.
    pub fn has_prefetch_work(&self, blob: BlobId, version: Version) -> bool {
        if !self.prefetch_enabled() {
            return false;
        }
        let len = self.store.board_sequence_len((blob, version));
        len > 0 && self.ctx.prefetch_cursor_behind((blob, version), len)
    }

    /// Asynchronous batched read-ahead: claim up to `max_chunks` chunks
    /// the cohort touched but this node has not (the predicted
    /// next-chunk window off the [`PatternBoard`](crate::board::PatternBoard)
    /// sequence), resolve their descriptors, fetch them through the
    /// batched per-provider pipeline and land them in the node-shared
    /// chunk cache, where [`Client::read_multi`] serves them without
    /// touching the providers again.
    ///
    /// Best-effort semantics: chunks whose every replica is down are
    /// skipped (per-chunk failover first, like the demand path — a
    /// provider lost mid-prefetch costs nothing but that chunk), and the
    /// call returns how many chunks actually landed. Claimed chunks are
    /// never re-claimed, so a chunk is prefetched at most once per node
    /// and a later demand read is the only retry path. Returns `Ok(0)`
    /// immediately when prefetching is off or nothing is predicted.
    pub fn prefetch_chunks(
        &self,
        blob: BlobId,
        version: Version,
        max_chunks: usize,
    ) -> BlobResult<usize> {
        if !self.prefetch_enabled() || max_chunks == 0 {
            return Ok(0);
        }
        let key = (blob, version);
        // The cohort-confirmation mask implements the confidence filter:
        // chunks only one cohort member reported (private divergence)
        // are walked past instead of prefetched, once a cohort exists.
        let min_pub = self.cfg().prefetch_min_publishers;
        let Some((seq, mask)) = self.store.board_sequence(key, min_pub) else {
            return Ok(0);
        };
        let candidates = self
            .ctx
            .claim_prefetch(key, &seq, mask.as_deref(), max_chunks);
        if candidates.is_empty() {
            return Ok(0);
        }
        let meta = self.version_meta(blob, version)?;
        // Coalesce the claimed indices into maximal runs for the single
        // descent (claims come board-ordered, not index-ordered).
        let mut idxs: Vec<u64> = candidates
            .iter()
            .copied()
            .filter(|&i| i < meta.span)
            .collect();
        idxs.sort_unstable();
        idxs.dedup();
        if idxs.is_empty() {
            return Ok(0);
        }
        let mut runs: Vec<Range<u64>> = Vec::new();
        for &i in &idxs {
            match runs.last_mut() {
                Some(r) if r.end == i => r.end = i + 1,
                _ => runs.push(i..i + 1),
            }
        }
        let descs = self.resolve_descs(blob, version, &meta, &runs)?;
        // Fetch in *peer-access order* (the order the guests will
        // demand), not index order — read-ahead must stay ahead of the
        // stream it predicts.
        let fetch: Vec<(u64, ChunkDesc, u64)> = candidates
            .iter()
            .filter_map(|&idx| {
                let desc = descs.get(&idx)?; // unwritten chunks: nothing to move
                if self.ctx.chunk_cache_contains(desc.id) {
                    return None; // a co-located client already landed it
                }
                let cr = chunk_range(idx, meta.chunk_size, meta.size);
                Some((idx, desc.clone(), cr.end - cr.start))
            })
            .collect();
        // Land the window in small batched sub-fetches so early chunks
        // become servable while later ones are still on the wire — a
        // wide in-flight budget must not turn the whole window into one
        // all-or-nothing arrival that demand reads race past. Each
        // sub-batch is re-filtered against the cache right before its
        // fetch: a chunk a demand read landed mid-step is not fetched a
        // second time.
        const SUB_BATCH: usize = 8;
        let (mut landed, mut bytes) = (0u64, 0u64);
        for group in fetch.chunks(SUB_BATCH) {
            let group: Vec<(u64, ChunkDesc, u64)> = group
                .iter()
                .filter(|(_, desc, _)| !self.ctx.chunk_cache_contains(desc.id))
                .cloned()
                .collect();
            for (idx, res) in self.fetch_chunks_results(&group) {
                if let Ok(data) = res {
                    bytes += data.len();
                    landed += 1;
                    let id = descs.get(&idx).expect("fetched chunks have descs").id;
                    self.ctx.chunk_cache_insert(id, data, ChunkOrigin::Prefetch);
                }
            }
        }
        if landed > 0 {
            self.ctx.note_prefetched(landed, bytes);
        }
        Ok(landed as usize)
    }

    /// Resolve the chunk descriptors covering `cover_runs` (sorted
    /// disjoint index runs): the node-shared descriptor cache first, then
    /// a *single* segment-tree descent for the remainder. Chunk-granular
    /// hit/miss counts feed the context's aggregate counters. Indices
    /// absent from the returned map are unwritten (read as zeros).
    fn resolve_descs(
        &self,
        blob: BlobId,
        version: Version,
        meta: &VersionMeta,
        cover_runs: &[Range<u64>],
    ) -> BlobResult<FastMap<u64, ChunkDesc>> {
        let mut descs: FastMap<u64, ChunkDesc> = FastMap::default();
        let mut missing: Vec<Range<u64>> = Vec::new();
        let (hits, misses) = self.ctx.with_entry((blob, version), |entry| {
            let (mut hits, mut misses) = (0u64, 0u64);
            for run in cover_runs {
                // Cached descriptors for the already-resolved parts.
                for resolved in entry.resolved.runs_within(run) {
                    hits += resolved.end - resolved.start;
                    for i in resolved {
                        if let Some(d) = entry.descs.get(&i) {
                            descs.insert(i, d.clone());
                        }
                    }
                }
                // The remainder needs the (single) descent below.
                for gap in entry.resolved.gaps_within(run) {
                    misses += gap.end - gap.start;
                    missing.push(gap);
                }
            }
            (hits, misses)
        });
        self.ctx.note_desc_lookup(hits, misses);
        if !missing.is_empty() {
            let leaves = {
                let mut io = ClientNodeIo { client: self };
                segtree::collect_leaves_multi(&mut io, meta.root, meta.span, &missing)?
            };
            self.ctx.with_entry((blob, version), |entry| {
                for (i, d) in leaves {
                    entry.descs.insert(i, d.clone());
                    descs.insert(i, d);
                }
                for run in missing {
                    entry.resolved.insert(run);
                }
            });
        }
        Ok(descs)
    }

    /// Fetch `chunks` (index, descriptor, stored length), grouped by
    /// provider: each provider serves its group as one batched disk read +
    /// one batched transfer, providers in parallel. Chunks whose batch
    /// fails fall back to per-chunk [`fetch_chunk`] replica failover.
    /// Returns one result per chunk — the demand path propagates the
    /// first error, the prefetch path tolerates per-chunk failures.
    fn fetch_chunks_results(&self, chunks: &[(u64, ChunkDesc, u64)]) -> ChunkResults {
        if chunks.is_empty() {
            return Vec::new();
        }
        // Preferred replica per chunk, spread like fetch_chunk so batched
        // and per-chunk paths load the same copies.
        let mut by_provider: HashMap<NodeId, Vec<(u64, ChunkDesc, u64)>> = HashMap::new();
        for (idx, desc, len) in chunks {
            let k = desc.replicas.len();
            debug_assert!(k > 0);
            let preferred = desc.replicas[(desc.id.0 as usize + self.node.index()) % k];
            by_provider
                .entry(preferred)
                .or_default()
                .push((*idx, desc.clone(), *len));
        }
        let mut providers: Vec<NodeId> = by_provider.keys().copied().collect();
        providers.sort_unstable(); // deterministic task order
        let results: Arc<Mutex<ChunkResults>> =
            Arc::new(Mutex::new(Vec::with_capacity(chunks.len())));
        let tasks: Vec<Box<dyn FnOnce() + Send + 'static>> = providers
            .into_iter()
            .map(|prov| {
                let group = by_provider.remove(&prov).expect("grouped above");
                let store = Arc::clone(&self.store);
                let results = Arc::clone(&results);
                let me = self.node;
                Box::new(move || {
                    let got = fetch_chunk_batch(&store, me, prov, group);
                    results.lock().extend(got);
                }) as Box<dyn FnOnce() + Send + 'static>
            })
            .collect();
        self.store.fabric.par_join(tasks);
        Arc::try_unwrap(results)
            .unwrap_or_else(|a| Mutex::new(a.lock().clone()))
            .into_inner()
    }

    /// Write `data` at `offset` on top of `(blob, base)` and publish the
    /// result as the next snapshot. Partially covered chunks are
    /// read-modify-written against the base version.
    pub fn write(
        &self,
        blob: BlobId,
        base: Version,
        offset: u64,
        data: Payload,
    ) -> BlobResult<Version> {
        let meta = self.version_meta(blob, base)?;
        let len = data.len();
        if offset + len > meta.size {
            return Err(BlobError::OutOfBounds {
                offset,
                len,
                size: meta.size,
            });
        }
        if len == 0 {
            return Err(BlobError::BadInput("empty write"));
        }
        let range = offset..offset + len;
        let cover = chunk_cover(&range, meta.chunk_size);
        let mut updates: Vec<(u64, Payload)> =
            Vec::with_capacity((cover.end - cover.start) as usize);
        for idx in cover {
            let cr = chunk_range(idx, meta.chunk_size, meta.size);
            let part = intersect(&cr, &range);
            let piece = data.slice(part.start - offset, part.end - offset);
            let full = if part == cr {
                piece
            } else {
                // Read-modify-write against the base snapshot, splicing
                // the patch in place (no head/tail rope rebuild).
                let mut old = self.read(blob, base, cr.clone())?;
                old.overwrite_in_place(part.start - cr.start, piece);
                old
            };
            updates.push((idx, full));
        }
        self.write_chunks(blob, base, updates)
    }

    /// Publish a snapshot from whole-chunk updates (the COMMIT fast path:
    /// the mirroring module gap-fills chunks locally, so every modified
    /// chunk arrives complete). `updates` maps chunk index → full chunk
    /// payload.
    ///
    /// With [`BlobConfig::dedup`] on, identical payloads within the
    /// commit collapse to one stored chunk and payloads already indexed
    /// by content in the node's [`NodeContext`] are committed by
    /// reference (see the module docs). A failed publish releases every
    /// provider-side reference the commit took.
    pub fn write_chunks(
        &self,
        blob: BlobId,
        base: Version,
        updates: Vec<(u64, Payload)>,
    ) -> BlobResult<Version> {
        self.write_chunks_accounted(blob, base, updates)
            .map(|(v, _)| v)
    }

    /// [`Client::write_chunks`], additionally returning the payload
    /// bytes *this commit* published by reference (index reuse +
    /// intra-commit collapse). Callers attributing dedup savings to one
    /// image (e.g. the mirror's COMMIT stats) must use this rather than
    /// delta-reading the node-shared [`NodeContext`] counters, which
    /// interleave across co-located committers.
    pub fn write_chunks_accounted(
        &self,
        blob: BlobId,
        base: Version,
        updates: Vec<(u64, Payload)>,
    ) -> BlobResult<(Version, u64)> {
        let meta = self.version_meta(blob, base)?;
        if updates.is_empty() {
            return Err(BlobError::BadInput("empty update set"));
        }
        for (idx, data) in &updates {
            let cr = chunk_range(*idx, meta.chunk_size, meta.size);
            if data.len() != cr.end - cr.start {
                return Err(BlobError::BadInput("update is not a full chunk"));
            }
        }

        // Content-address the update set: one `UniqueChunk` per distinct
        // payload, `slot_of[s]` mapping each update slot to its unique.
        // With dedup off every slot is its own unique and no digest is
        // computed.
        let (mut uniques, slot_of) = self.plan_commit(&updates);
        // Every provider-side reference this commit acquires, recorded
        // so a failed publish can roll all of them back.
        let mut retained: Vec<(NodeId, ChunkId)> = Vec::new();
        if self.cfg().dedup {
            self.dedup_probe(&updates, &mut uniques, &mut retained);
        }
        let mut reused_bytes = 0u64;
        let result = self.publish_planned(
            blob,
            base,
            meta,
            &updates,
            &uniques,
            &slot_of,
            &mut retained,
            &mut reused_bytes,
        );
        if result.is_err() {
            // Roll back: drop every reference taken above. `release`
            // never underflows, so a partial rollback racing other
            // commits stays safe.
            for (prov, id) in retained.drain(..) {
                self.store.provider_release(prov, id);
            }
        }
        result.map(|v| (v, reused_bytes))
    }

    /// Group the update set by content. Returns the distinct payloads
    /// (first-appearance order) and the slot → unique mapping.
    fn plan_commit(&self, updates: &[(u64, Payload)]) -> (Vec<UniqueChunk>, Vec<usize>) {
        let mut uniques: Vec<UniqueChunk> = Vec::with_capacity(updates.len());
        let mut slot_of: Vec<usize> = Vec::with_capacity(updates.len());
        if self.cfg().dedup {
            let strong = self.cfg().strong_digest;
            let mut by_key: FastMap<ContentKey, usize> = FastMap::default();
            for (slot, (_, data)) in updates.iter().enumerate() {
                let key = (data.len(), data.content_digest(strong));
                let u = *by_key.entry(key).or_insert_with(|| {
                    uniques.push(UniqueChunk {
                        key: Some(key),
                        first_slot: slot,
                        uses: 0,
                        reused: None,
                    });
                    uniques.len() - 1
                });
                uniques[u].uses += 1;
                slot_of.push(u);
            }
        } else {
            for slot in 0..updates.len() {
                uniques.push(UniqueChunk {
                    key: None,
                    first_slot: slot,
                    uses: 1,
                    reused: None,
                });
                slot_of.push(slot);
            }
        }
        (uniques, slot_of)
    }

    /// Probe the node's digest index — then, on a miss, the node's
    /// gossiped replica of the cluster-wide
    /// [`crate::cluster::ClusterIndex`] — for each unique payload and
    /// validate hits against the providers: one control RPC per distinct
    /// reachable provider (the batched refcount bump + verification
    /// round), a **byte comparison** of the candidate payload against a
    /// stored replica (a 64-bit digest alone is not collision-proof, and
    /// a collision here would silently publish wrong content — in a real
    /// deployment the provider performs this check while handling the
    /// bump), then a `retain` per replica that still holds the chunk.
    /// Replicas that are down, unreachable or no longer hold the chunk
    /// drop out — exactly the push pipeline's per-replica failover
    /// semantics. A hit whose chunk is gone everywhere is forgotten in
    /// both indexes; a content mismatch (digest collision) keeps the
    /// index entry — it is still correct for the *other* payload — and
    /// pushes fresh. Cluster hits ride the identical validation and
    /// rollback path as node-local ones: probing the replica costs no
    /// RPC, only the retains do.
    fn dedup_probe(
        &self,
        updates: &[(u64, Payload)],
        uniques: &mut [UniqueChunk],
        retained: &mut Vec<(NodeId, ChunkId)>,
    ) {
        let cluster_on = self.cfg().cluster_dedup;
        let mut candidates: Vec<(usize, ContentKey, ChunkDesc)> = Vec::new();
        let mut cluster_misses: Vec<(usize, ContentKey)> = Vec::new();
        for (u, unique) in uniques.iter().enumerate() {
            let key = unique.key.expect("dedup plan carries keys");
            if let Some(desc) = self.ctx.digest_lookup(&key) {
                candidates.push((u, key, desc));
            } else if cluster_on {
                if self.cfg().coarse_cluster_probe {
                    // Ablation: the pre-wall-clock per-key exclusive probe.
                    if let Some(desc) = self.store.cluster_get_exclusive(&key) {
                        candidates.push((u, key, desc));
                    }
                } else {
                    cluster_misses.push((u, key));
                }
            }
        }
        // Probe every node-index miss under ONE shared acquisition of the
        // cluster index: commits probing concurrently share the lock, and
        // a commit never pays more than one acquisition however many
        // chunks it carries.
        if !cluster_misses.is_empty() {
            let keys: Vec<ContentKey> = cluster_misses.iter().map(|&(_, key)| key).collect();
            let hits = self.store.cluster_get(&keys);
            for ((u, key), hit) in cluster_misses.into_iter().zip(hits) {
                if let Some(desc) = hit {
                    candidates.push((u, key, desc));
                }
            }
        }
        if candidates.is_empty() {
            return;
        }
        let mut provs: Vec<NodeId> = candidates
            .iter()
            .flat_map(|(_, _, d)| d.replicas.iter().copied())
            .collect();
        provs.sort_unstable();
        provs.dedup();
        let c = self.cfg().control_bytes;
        let mut reachable: FastSet<NodeId> = FastSet::default();
        for prov in provs {
            if !self.store.fabric.is_down(prov)
                && self.store.fabric.rpc(self.node, prov, c, c).is_ok()
            {
                reachable.insert(prov);
            }
        }
        for (u, key, desc) in candidates {
            // Verify the bytes against whichever replica still stores
            // the chunk. `None` = gone everywhere (stale entry),
            // `Some(false)` = digest collision. The stored payload is
            // cloned out (rope segments are refcounted — no byte copy)
            // so the O(chunk_size) comparison runs *outside* the shard
            // lock and never stalls concurrent traffic to that provider.
            //
            // A collision-resistant (SHA-256) key skips this round
            // entirely — the whole point of `BlobConfig::strong_digest`:
            // the hash alone is proof of content equality, so the hit
            // costs only the refcount bump. Stale entries (chunk gone
            // everywhere) are still caught below when no replica
            // retains.
            let payload = &updates[uniques[u].first_slot].1;
            let mut verdict: Option<bool> = if key.1.is_collision_resistant() {
                Some(true)
            } else {
                None
            };
            for &prov in desc.replicas.iter() {
                if verdict.is_some() {
                    break;
                }
                if let Some(stored) = self.store.provider_peek(prov, desc.id) {
                    verdict = Some(stored.content_eq(payload));
                }
            }
            match verdict {
                Some(true) => {}
                Some(false) => continue,
                None => {
                    self.forget_stale_hit(&key);
                    continue;
                }
            }
            let mut survivors: Vec<NodeId> = Vec::with_capacity(desc.replicas.len());
            for &prov in desc.replicas.iter() {
                if reachable.contains(&prov) && self.store.provider_retain(prov, desc.id) {
                    survivors.push(prov);
                    retained.push((prov, desc.id));
                }
            }
            if survivors.is_empty() {
                self.forget_stale_hit(&key);
            } else {
                uniques[u].reused = Some(ChunkDesc {
                    id: desc.id,
                    replicas: survivors.into(),
                });
            }
        }
    }

    /// A validated dedup hit turned out to point at content that no
    /// longer exists anywhere (e.g. snapshot GC reclaimed it): drop the
    /// entry from both the node index and the cluster replica, wherever
    /// it lives — a stale key is stale in either.
    fn forget_stale_hit(&self, key: &ContentKey) {
        self.ctx.digest_forget(key);
        if self.cfg().cluster_dedup {
            self.store.cluster_forget(key);
        }
    }

    /// Allocate, push and publish a content-planned commit. Any error
    /// propagates to `write_chunks`, which rolls back `retained`.
    #[allow(clippy::too_many_arguments)]
    fn publish_planned(
        &self,
        blob: BlobId,
        base: Version,
        meta: VersionMeta,
        updates: &[(u64, Payload)],
        uniques: &[UniqueChunk],
        slot_of: &[usize],
        retained: &mut Vec<(NodeId, ChunkId)>,
        reused_out: &mut u64,
    ) -> BlobResult<Version> {
        // 1. Allocate chunk ids + providers for the uniques that need
        //    fresh storage (one provider-manager RPC, skipped entirely
        //    when every chunk commits by reference), avoiding providers
        //    the fabric currently reports down.
        let fresh: Vec<usize> = (0..uniques.len())
            .filter(|&u| uniques[u].reused.is_none())
            .collect();
        let mut unique_descs: Vec<Option<ChunkDesc>> =
            uniques.iter().map(|u| u.reused.clone()).collect();
        if !fresh.is_empty() {
            let n = fresh.len();
            let c = self.cfg().control_bytes;
            self.store.fabric.rpc(
                self.node,
                self.store.topology().pmanager,
                c,
                c + 24 * n as u64,
            )?;
            let down: Vec<bool> = self
                .store
                .topology()
                .providers
                .iter()
                .map(|&p| self.store.fabric.is_down(p))
                .collect();
            let descs = self
                .store
                .pm_allocate(n, meta.chunk_size, self.cfg().replication, down)?;
            // A fresh put stores each replica at refcount 1 — record that
            // implicit reference *before* pushing, so a failed push or
            // publish releases (and thereby frees) whatever actually got
            // stored instead of orphaning it on the providers. Releasing
            // a replica the push never reached is a no-op.
            for desc in &descs {
                for &prov in desc.replicas.iter() {
                    retained.push((prov, desc.id));
                }
            }

            // 2. Push the distinct payloads through the configured
            //    replication pipeline (fan-out / chain / sequential) with
            //    per-replica failover — deduplicated bytes never reach
            //    the wire.
            let fresh_updates: Arc<Vec<(u64, Payload)>> = Arc::new(
                fresh
                    .iter()
                    .map(|&u| updates[uniques[u].first_slot].clone())
                    .collect(),
            );
            let pushed = self.push_chunks(&fresh_updates, descs)?;
            for (&u, desc) in fresh.iter().zip(pushed) {
                unique_descs[u] = Some(desc);
            }
        }

        // 3. Extra intra-commit uses take one more provider-side
        //    reference each (a fresh put starts at refcount 1 — its
        //    first use; a validated reuse already retained once).
        let mut dedup_chunks = 0u64;
        let mut dedup_bytes = 0u64;
        for (u, unique) in uniques.iter().enumerate() {
            let desc = unique_descs[u].as_ref().expect("filled above");
            for _ in 1..unique.uses {
                for &prov in desc.replicas.iter() {
                    if self.store.provider_retain(prov, desc.id) {
                        retained.push((prov, desc.id));
                    }
                }
            }
            let len = updates[unique.first_slot].1.len();
            if unique.reused.is_some() {
                dedup_chunks += unique.uses;
                dedup_bytes += len * unique.uses;
            } else if unique.uses > 1 {
                dedup_chunks += unique.uses - 1;
                dedup_bytes += len * (unique.uses - 1);
            }
        }

        // 4. Shadow the metadata tree with one descriptor per slot.
        let update_map: FastMap<u64, ChunkDesc> = updates
            .iter()
            .enumerate()
            .map(|(slot, (i, _))| {
                (
                    *i,
                    unique_descs[slot_of[slot]].clone().expect("filled above"),
                )
            })
            .collect();
        let new_root = {
            let mut io = ClientNodeIo { client: self };
            segtree::build_new_tree(&mut io, meta.root, meta.span, &update_map)?
        };

        // 5. Publish at the version manager (the total-order point).
        self.control_rpc(self.store.topology().vmanager)?;
        let v = self.store.vm_publish(blob, base, new_root)?;
        self.version_cache.lock().insert(
            (blob, v),
            VersionMeta {
                root: new_root,
                ..meta
            },
        );
        // The commit is durable: record its content for future reuse and
        // account the dedup savings.
        if self.cfg().dedup {
            for (u, unique) in uniques.iter().enumerate() {
                if let Some(key) = unique.key {
                    let desc = unique_descs[u].clone().expect("filled above");
                    self.ctx.digest_record(key, desc);
                }
            }
            if dedup_chunks > 0 {
                self.ctx.note_dedup(dedup_chunks, dedup_bytes);
            }
            *reused_out = dedup_bytes;
            self.publish_cluster_entries(uniques, &unique_descs);
        }
        // Seed the new snapshot's descriptor cache: everything resolved
        // for the base still holds (unmodified subtrees are shared), plus
        // the delta just published. The committing client — or any
        // co-located one — can then read the snapshot back without
        // touching the metadata plane. The base entry is *moved*, not
        // cloned: a commit chain would otherwise copy O(resolved chunks)
        // per commit; a later read of the base version simply re-resolves.
        {
            let mut entry = self.ctx.take_entry((blob, base)).unwrap_or_default();
            // Coalesce the updated indices into maximal runs first: a
            // full-image commit is then one range insert, not one per
            // chunk.
            let mut idxs: Vec<u64> = update_map.keys().copied().collect();
            idxs.sort_unstable();
            let mut run_start = idxs[0];
            let mut run_end = idxs[0] + 1;
            for &i in &idxs[1..] {
                if i == run_end {
                    run_end = i + 1;
                } else {
                    entry.resolved.insert(run_start..run_end);
                    (run_start, run_end) = (i, i + 1);
                }
            }
            entry.resolved.insert(run_start..run_end);
            for (i, d) in &update_map {
                entry.descs.insert(*i, d.clone());
            }
            self.ctx.insert_entry((blob, v), entry);
        }
        Ok(v)
    }

    /// Push a durable commit's novel content keys to the cluster-wide
    /// dedup index: the batch is filtered against the node's gossiped
    /// replica first (content the cluster already indexes — the common
    /// converged boot path — costs nothing), then one control RPC
    /// carries the survivors to the index host beside the provider
    /// manager, and the update gossips to the other compute nodes along
    /// the broadcast tree. Best-effort like every index update: an
    /// unreachable host just drops the batch.
    fn publish_cluster_entries(&self, uniques: &[UniqueChunk], unique_descs: &[Option<ChunkDesc>]) {
        if !self.cfg().cluster_dedup {
            return;
        }
        let entries: Vec<(ContentKey, ChunkDesc)> = uniques
            .iter()
            .enumerate()
            .filter_map(|(u, unique)| {
                let key = unique.key?;
                Some((key, unique_descs[u].clone().expect("filled above")))
            })
            .collect();
        let keys: Vec<ContentKey> = entries.iter().map(|&(k, _)| k).collect();
        let novel: FastSet<ContentKey> = self.store.cluster_novel_of(&keys).into_iter().collect();
        if novel.is_empty() {
            return;
        }
        // One control round per commit: key + descriptor summaries are
        // ~48 bytes each (length, digest, chunk id, replica set).
        let summary_bytes = self.cfg().control_bytes + 48 * novel.len() as u64;
        if !self.charge_host_publish(summary_bytes) {
            return; // index host unreachable: skip, the content stays node-local
        }
        let records: Vec<(ContentKey, ChunkDesc)> = entries
            .into_iter()
            .filter(|(key, _)| novel.contains(key))
            .collect();
        self.store.cluster_record(records);
    }

    /// Convenience: create a blob and publish `data` as `Version(1)` — the
    /// "upload image to the repository" client operation from Fig. 1.
    pub fn upload(&self, data: Payload) -> BlobResult<(BlobId, Version)> {
        let blob = self.create_blob(data.len())?;
        let v = self.write(blob, Version(0), 0, data)?;
        Ok((blob, v))
    }

    /// Delete one snapshot and reclaim the chunk storage nothing else
    /// references (see [`Client::delete_snapshots`]).
    pub fn delete_snapshot(&self, blob: BlobId, version: Version) -> BlobResult<GcReport> {
        self.delete_snapshots(blob, std::slice::from_ref(&version))
    }

    /// Delete a batch of snapshots of `blob` and garbage-collect the
    /// chunk storage that only they referenced.
    ///
    /// The version manager marks the versions dead (one control RPC,
    /// all-or-nothing) and hands back every live root of the blob's
    /// *clone family* — the only trees that can share metadata leaf
    /// nodes with the deleted ones. The collector then walks the dead
    /// trees and the live trees ([`segtree::collect_leaf_keys`],
    /// served through the client's metadata node cache) and diffs them
    /// by **leaf node key**: a leaf reachable only from dead roots holds
    /// exactly one provider-side reference per acked replica in its
    /// descriptor — the write path's refcount invariant — so releasing
    /// those references (batched per provider, one control RPC each,
    /// down providers skipped) frees precisely the chunks no surviving
    /// snapshot can reach, and never a shared one. Zero-ref chunks are
    /// removed by the providers with the aggregate storage counters
    /// maintained exactly.
    ///
    /// Freed chunks are evicted from the cluster dedup index, every
    /// node's digest index and chunk cache, and the deleted versions'
    /// descriptor-cache entries and board patterns are dropped (one
    /// control RPC to the index host plus a gossip round charge; the
    /// eviction is a cache/index hygiene matter — a stale entry that
    /// survives, e.g. across a partition, self-heals at its next
    /// validated use).
    ///
    /// Errors after the marking RPC leave the versions deleted with
    /// their references unreleased — a bounded leak, never a wrong
    /// free; re-deleting is not possible (the versions no longer
    /// resolve), so the leak is the crash-consistency cost of not
    /// running a write-ahead log.
    pub fn delete_snapshots(&self, blob: BlobId, versions: &[Version]) -> BlobResult<GcReport> {
        if versions.is_empty() {
            return Ok(GcReport::default());
        }
        // 1. Serialize the delete at the version manager and snapshot
        //    the family's live-root frontier under the same lock.
        self.control_rpc(self.store.topology().vmanager)?;
        let outcome = self.store.vm_delete_snapshots(blob, versions)?;
        let (dead_roots, live_roots, span) = (outcome.dead_roots, outcome.live_roots, outcome.span);
        for &v in versions {
            self.version_cache.lock().remove(&(blob, v));
        }

        // 2. Reachability diff by leaf node key: dead = reachable from a
        //    deleted root and from no live one.
        let mut dead: FastMap<NodeKey, ChunkDesc> = FastMap::default();
        {
            let mut io = ClientNodeIo { client: self };
            for &root in &dead_roots {
                for (_, key, desc) in segtree::collect_leaf_keys(&mut io, root, span)? {
                    dead.insert(key, desc);
                }
            }
            let live_roots: FastSet<NodeKey> = live_roots.into_iter().collect();
            for &root in &live_roots {
                if dead.is_empty() {
                    break;
                }
                for (_, key, _) in segtree::collect_leaf_keys(&mut io, root, span)? {
                    dead.remove(&key);
                }
            }
        }
        let mut report = GcReport {
            deleted_versions: versions.len(),
            dead_leaves: dead.len() as u64,
            ..GcReport::default()
        };

        // 3. Release the dead leaves' references on every acked replica,
        //    batched per provider. A down or unreachable provider is
        //    skipped — its copy is gone with it (or will resurface as an
        //    orphan a future stale-hit validation cleans up); the storm
        //    must not fail because one node died mid-release.
        let mut by_prov: HashMap<NodeId, Vec<ChunkId>> = HashMap::new();
        for desc in dead.values() {
            for &prov in desc.replicas.iter() {
                by_prov.entry(prov).or_default().push(desc.id);
            }
        }
        let mut providers: Vec<NodeId> = by_prov.keys().copied().collect();
        providers.sort_unstable(); // deterministic RPC order
        let c = self.cfg().control_bytes;
        let mut freed_ids: FastSet<ChunkId> = FastSet::default();
        for prov in providers {
            let ids = &by_prov[&prov];
            if self.store.fabric.is_down(prov) {
                continue;
            }
            let req = c + 8 * ids.len() as u64;
            if self.store.fabric.rpc(self.node, prov, req, c).is_err() {
                continue;
            }
            for &id in ids {
                let (bytes, removed, dropped) = self.store.provider_release_counted(prov, id, 1);
                report.released_refs += dropped as u64;
                if removed {
                    report.freed_chunks += 1;
                    report.freed_bytes += bytes;
                    freed_ids.insert(id);
                }
            }
        }

        // 4. Evict the freed entries cluster-wide: board patterns and
        //    descriptor caches of the dead versions, digest/chunk-cache
        //    entries of the freed chunks, on the index host and every
        //    node replica. Charged as one control RPC plus a gossip
        //    round when the host is reachable; the eviction itself is
        //    applied regardless (replicas converge eventually — stale
        //    survivors self-heal at validation).
        let keys: Vec<(BlobId, Version)> = versions.iter().map(|&v| (blob, v)).collect();
        let summary_bytes = c + 8 * (keys.len() + freed_ids.len()) as u64;
        self.charge_host_publish(summary_bytes);
        self.store.purge_deleted(&keys, &freed_ids);
        Ok(report)
    }

    /// Push the update set through the configured replication pipeline
    /// and reduce each descriptor to the replicas that acknowledged
    /// (in allocation order, so all modes publish identical replica
    /// sets when nothing fails). Errors only if a chunk retains no
    /// replica.
    ///
    /// The update set and descriptors are shared with the push tasks by
    /// refcount; each replica push clones exactly one payload rope (the
    /// copy that provider stores).
    fn push_chunks(
        &self,
        updates: &Arc<Vec<(u64, Payload)>>,
        descs: Vec<ChunkDesc>,
    ) -> BlobResult<Vec<ChunkDesc>> {
        let descs = Arc::new(descs);
        let outcome = match self.cfg().replication_mode {
            ReplicationMode::Fanout => self.push_fanout(updates, &descs),
            ReplicationMode::Chain => self.push_chain(updates, &descs),
            ReplicationMode::ChainPipelined => self.push_chain_pipelined(updates, &descs),
            ReplicationMode::Sequential => self.push_sequential(updates, &descs),
        };
        let mut out = Vec::with_capacity(descs.len());
        for (slot, desc) in descs.iter().enumerate() {
            let acked = &outcome.acked[slot];
            let survivors: Vec<NodeId> = desc
                .replicas
                .iter()
                .copied()
                .filter(|p| acked.contains(p))
                .collect();
            if survivors.is_empty() {
                return Err(outcome.errors[slot]
                    .clone()
                    .unwrap_or(BlobError::ChunkUnavailable(desc.id)));
            }
            out.push(ChunkDesc {
                id: desc.id,
                replicas: survivors.into(),
            });
        }
        Ok(out)
    }

    /// Fan-out: every `(chunk, replica)` pair grouped by destination
    /// provider; one batched transfer + disk write per provider, all
    /// providers in parallel.
    fn push_fanout(
        &self,
        updates: &Arc<Vec<(u64, Payload)>>,
        descs: &Arc<Vec<ChunkDesc>>,
    ) -> PushOutcome {
        let mut by_provider: HashMap<NodeId, Vec<usize>> = HashMap::new();
        for (slot, desc) in descs.iter().enumerate() {
            for &prov in desc.replicas.iter() {
                by_provider.entry(prov).or_default().push(slot);
            }
        }
        let mut providers: Vec<NodeId> = by_provider.keys().copied().collect();
        providers.sort_unstable(); // deterministic task order
        let outcome = Arc::new(Mutex::new(PushOutcome::new(descs.len())));
        let async_writes = self.cfg().async_writes;
        let tasks: Vec<Box<dyn FnOnce() + Send + 'static>> = providers
            .into_iter()
            .map(|prov| {
                let slots = by_provider.remove(&prov).expect("grouped above");
                let updates = Arc::clone(updates);
                let descs = Arc::clone(descs);
                let store = Arc::clone(&self.store);
                let outcome = Arc::clone(&outcome);
                let me = self.node;
                Box::new(move || {
                    let res = push_slots(&store, me, prov, &updates, &descs, &slots, async_writes);
                    record_slots(&outcome, prov, &slots, res);
                }) as Box<dyn FnOnce() + Send + 'static>
            })
            .collect();
        self.store.fabric.par_join(tasks);
        unwrap_shared(outcome)
    }

    /// Chain: chunks sharing a replica chain are pushed once to the first
    /// replica; each live hop forwards the batch to the next. A dead hop
    /// is skipped and the next hop is fed from the last live holder.
    fn push_chain(
        &self,
        updates: &Arc<Vec<(u64, Payload)>>,
        descs: &Arc<Vec<ChunkDesc>>,
    ) -> PushOutcome {
        let mut by_chain: HashMap<Arc<[NodeId]>, Vec<usize>> = HashMap::new();
        for (slot, desc) in descs.iter().enumerate() {
            by_chain
                .entry(desc.replicas.clone())
                .or_default()
                .push(slot);
        }
        let mut chains: Vec<Arc<[NodeId]>> = by_chain.keys().cloned().collect();
        chains.sort_unstable(); // deterministic task order
        let outcome = Arc::new(Mutex::new(PushOutcome::new(descs.len())));
        let async_writes = self.cfg().async_writes;
        let tasks: Vec<Box<dyn FnOnce() + Send + 'static>> = chains
            .into_iter()
            .map(|chain| {
                let slots = by_chain.remove(&chain).expect("grouped above");
                let updates = Arc::clone(updates);
                let descs = Arc::clone(descs);
                let store = Arc::clone(&self.store);
                let outcome = Arc::clone(&outcome);
                let me = self.node;
                Box::new(move || {
                    let mut src = me;
                    for &prov in chain.iter() {
                        match push_slots(&store, src, prov, &updates, &descs, &slots, async_writes)
                        {
                            Ok(()) => {
                                record_slots(&outcome, prov, &slots, Ok(()));
                                src = prov;
                            }
                            Err(e) => record_slots(&outcome, prov, &slots, Err(e)),
                        }
                    }
                }) as Box<dyn FnOnce() + Send + 'static>
            })
            .collect();
        self.store.fabric.par_join(tasks);
        unwrap_shared(outcome)
    }

    /// Pipelined chain: chunks stream down each replica chain in
    /// *waves* — in wave `w`, chunk `j` moves over hop `w − j`, so hop
    /// `n+1` forwards chunk `j` while hop `n` is already receiving
    /// chunk `j+1`. Each link therefore carries one chunk at a time
    /// (streaming on an established connection), and the chain's
    /// completion latency collapses from `hops × batch time` (the
    /// store-and-forward [`Client::push_chain`]) towards
    /// `batch time + hops × chunk time` — the Frisbee-style pipelining
    /// the broadcast ablations show, applied to replication. Client
    /// egress stays `1×` the payload; the price is one message per
    /// `(chunk, hop)` instead of one per hop.
    ///
    /// Failover is chunk-granular with [`Client::push_chain`]'s
    /// semantics: a dead hop is skipped for that chunk and the next hop
    /// is fed from the chunk's last live holder.
    fn push_chain_pipelined(
        &self,
        updates: &Arc<Vec<(u64, Payload)>>,
        descs: &Arc<Vec<ChunkDesc>>,
    ) -> PushOutcome {
        let mut by_chain: HashMap<Arc<[NodeId]>, Vec<usize>> = HashMap::new();
        for (slot, desc) in descs.iter().enumerate() {
            by_chain
                .entry(desc.replicas.clone())
                .or_default()
                .push(slot);
        }
        let mut chains: Vec<Arc<[NodeId]>> = by_chain.keys().cloned().collect();
        chains.sort_unstable(); // deterministic task order
        let outcome = Arc::new(Mutex::new(PushOutcome::new(descs.len())));
        let async_writes = self.cfg().async_writes;
        let tasks: Vec<Box<dyn FnOnce() + Send + 'static>> = chains
            .into_iter()
            .map(|chain| {
                let slots = by_chain.remove(&chain).expect("grouped above");
                let updates = Arc::clone(updates);
                let descs = Arc::clone(descs);
                let store = Arc::clone(&self.store);
                let outcome = Arc::clone(&outcome);
                let me = self.node;
                Box::new(move || {
                    let (m, k) = (slots.len(), chain.len());
                    // Last live holder of each chunk (starts at the
                    // client); advanced as hops acknowledge.
                    let mut src_of: Vec<NodeId> = vec![me; m];
                    for wave in 0..m + k - 1 {
                        // Transfers of one wave ride distinct links
                        // (chunk j on hop w−j), so they run
                        // concurrently; the wave barrier is what
                        // serializes consecutive chunks on each link.
                        let active: Vec<usize> =
                            (wave.saturating_sub(k - 1)..=wave.min(m - 1)).collect();
                        let wave_res: WaveResults =
                            Arc::new(Mutex::new(Vec::with_capacity(active.len())));
                        let wave_tasks: Vec<Box<dyn FnOnce() + Send + 'static>> = active
                            .iter()
                            .map(|&j| {
                                let hop = chain[wave - j];
                                let src = src_of[j];
                                let slot = slots[j];
                                let updates = Arc::clone(&updates);
                                let descs = Arc::clone(&descs);
                                let store = Arc::clone(&store);
                                let wave_res = Arc::clone(&wave_res);
                                Box::new(move || {
                                    let res = push_slots(
                                        &store,
                                        src,
                                        hop,
                                        &updates,
                                        &descs,
                                        &[slot],
                                        async_writes,
                                    );
                                    wave_res.lock().push((j, hop, res));
                                })
                                    as Box<dyn FnOnce() + Send + 'static>
                            })
                            .collect();
                        store.fabric.par_join(wave_tasks);
                        for (j, hop, res) in wave_res.lock().drain(..) {
                            match res {
                                Ok(()) => {
                                    record_slots(&outcome, hop, &[slots[j]], Ok(()));
                                    src_of[j] = hop;
                                }
                                Err(e) => record_slots(&outcome, hop, &[slots[j]], Err(e)),
                            }
                        }
                    }
                }) as Box<dyn FnOnce() + Send + 'static>
            })
            .collect();
        self.store.fabric.par_join(tasks);
        unwrap_shared(outcome)
    }

    /// Sequential reference: one push per chunk, replicas in order
    /// (the pre-batching behaviour, with the same failover semantics).
    fn push_sequential(
        &self,
        updates: &Arc<Vec<(u64, Payload)>>,
        descs: &Arc<Vec<ChunkDesc>>,
    ) -> PushOutcome {
        let outcome = Arc::new(Mutex::new(PushOutcome::new(descs.len())));
        let async_writes = self.cfg().async_writes;
        let tasks: Vec<Box<dyn FnOnce() + Send + 'static>> = (0..descs.len())
            .map(|slot| {
                let replicas = Arc::clone(&descs[slot].replicas);
                let updates = Arc::clone(updates);
                let descs = Arc::clone(descs);
                let store = Arc::clone(&self.store);
                let outcome = Arc::clone(&outcome);
                let me = self.node;
                Box::new(move || {
                    let slots = [slot];
                    for &prov in replicas.iter() {
                        let res =
                            push_slots(&store, me, prov, &updates, &descs, &slots, async_writes);
                        record_slots(&outcome, prov, &slots, res);
                    }
                }) as Box<dyn FnOnce() + Send + 'static>
            })
            .collect();
        self.store.fabric.par_join(tasks);
        unwrap_shared(outcome)
    }
}

/// What a snapshot delete reclaimed (see [`Client::delete_snapshots`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Versions marked dead at the version manager.
    pub deleted_versions: usize,
    /// Metadata leaf nodes reachable only from the deleted versions.
    pub dead_leaves: u64,
    /// Provider-side chunk references released (one per dead leaf per
    /// reachable acked replica).
    pub released_refs: u64,
    /// Chunk *replica instances* whose refcount reached zero and were
    /// removed from their provider.
    pub freed_chunks: u64,
    /// Provider storage bytes those removals reclaimed (replicas
    /// counted separately, matching `total_stored_bytes`).
    pub freed_bytes: u64,
}

/// One distinct payload content within a commit's update set.
#[derive(Debug)]
struct UniqueChunk {
    /// Content key, `None` when dedup is off (no digest computed).
    key: Option<ContentKey>,
    /// First update slot carrying this content (its payload is pushed).
    first_slot: usize,
    /// How many update slots carry this content.
    uses: u64,
    /// Validated digest-index hit: commit by reference to this
    /// descriptor instead of pushing.
    reused: Option<ChunkDesc>,
}

/// Per-chunk fetch outcomes keyed by chunk index.
type ChunkResults = Vec<(u64, BlobResult<Payload>)>;

/// One pipelined-chain wave's outcomes: `(chain slot, hop, result)`.
type WaveResults = Arc<Mutex<Vec<(usize, NodeId, BlobResult<()>)>>>;

/// Fetch one chunk with replica failover. The preferred replica is spread
/// by chunk id and reader so concurrent readers don't gang up on one copy.
fn fetch_chunk(
    store: &Arc<BlobStore>,
    me: NodeId,
    desc: &ChunkDesc,
    len: u64,
) -> BlobResult<Payload> {
    let k = desc.replicas.len();
    debug_assert!(k > 0);
    let start = (desc.id.0 as usize + me.index()) % k;
    let mut last: BlobError = BlobError::ChunkUnavailable(desc.id);
    for i in 0..k {
        let prov = desc.replicas[(start + i) % k];
        if store.fabric.is_down(prov) {
            last = BlobError::Net(NetError::NodeDown(prov));
            continue;
        }
        let got = match store.provider_fetch(prov, vec![desc.id]) {
            Ok(mut served) => served.pop().flatten(),
            Err(e) => {
                // Transport failure: this replica is unreachable, try
                // the next one — same failover as a down node.
                last = e;
                continue;
            }
        };
        let Some((data, hot)) = got else {
            last = BlobError::ChunkUnavailable(desc.id);
            continue;
        };
        let serve = || -> Result<(), NetError> {
            if !hot || !store.config().provider_read_cache {
                store.fabric.disk_read(prov, len)?;
            }
            store.fabric.transfer(prov, me, len)
        };
        match serve() {
            Ok(()) => {
                debug_assert_eq!(data.len(), len);
                return Ok(data);
            }
            Err(e) => last = BlobError::Net(e),
        }
    }
    Err(last)
}

/// Serve one provider's slice of a batched read plan: all chunks present
/// at `prov` are charged as one batched disk read (cold bytes only) and
/// one batched transfer — the per-message savings behind the vectored
/// pipeline. Chunks the provider cannot serve (missing, node down, or a
/// mid-batch fabric failure) fall back to per-chunk [`fetch_chunk`]
/// replica failover, preserving availability semantics.
fn fetch_chunk_batch(
    store: &Arc<BlobStore>,
    me: NodeId,
    prov: NodeId,
    group: Vec<(u64, ChunkDesc, u64)>,
) -> ChunkResults {
    let mut got: Vec<(u64, ChunkDesc, u64, Payload)> = Vec::with_capacity(group.len());
    let mut fallback: Vec<(u64, ChunkDesc, u64)> = Vec::new();
    let (mut total, mut cold) = (0u64, 0u64);
    if store.fabric.is_down(prov) || !store.is_provider(prov) {
        fallback = group;
    } else {
        let read_cache = store.config().provider_read_cache;
        let ids: Vec<ChunkId> = group.iter().map(|(_, desc, _)| desc.id).collect();
        match store.provider_fetch(prov, ids) {
            Ok(served) => {
                for ((idx, desc, len), res) in group.into_iter().zip(served) {
                    match res {
                        Some((data, hot)) => {
                            debug_assert_eq!(data.len(), len);
                            total += len;
                            if !hot || !read_cache {
                                cold += len;
                            }
                            got.push((idx, desc, len, data));
                        }
                        None => fallback.push((idx, desc, len)),
                    }
                }
            }
            // Transport failure: the whole batch retries through the
            // per-chunk failover path (it skips unreachable nodes).
            Err(_) => fallback = group,
        }
    }
    let mut out: ChunkResults = Vec::with_capacity(got.len() + fallback.len());
    if !got.is_empty() {
        let serve = || -> Result<(), NetError> {
            if cold > 0 {
                store.fabric.disk_read(prov, cold)?;
            }
            store.fabric.transfer(prov, me, total)
        };
        match serve() {
            Ok(()) => out.extend(got.into_iter().map(|(idx, _, _, data)| (idx, Ok(data)))),
            // The provider failed mid-batch: retry every chunk through the
            // failover path (it skips down nodes).
            Err(_) => fallback.extend(got.into_iter().map(|(idx, desc, len, _)| (idx, desc, len))),
        }
    }
    for (idx, desc, len) in fallback {
        out.push((idx, fetch_chunk(store, me, &desc, len)));
    }
    out
}

/// Per-chunk push results, indexed like the update set.
#[derive(Debug, Default)]
struct PushOutcome {
    /// Replicas that acknowledged each chunk (completion order; reduced
    /// against the descriptor's allocation order afterwards).
    acked: Vec<Vec<NodeId>>,
    /// Last push failure seen per chunk.
    errors: Vec<Option<BlobError>>,
}

impl PushOutcome {
    fn new(n: usize) -> Self {
        Self {
            acked: vec![Vec::new(); n],
            errors: vec![None; n],
        }
    }
}

/// Push the chunks at `slots` from `src` to provider `prov`: one
/// transfer + one (write-back) disk write for the whole group, chunks
/// stored under a single shard acquisition — the per-message savings
/// mirroring the batched read path. The payload rope is cloned once per
/// stored replica (the copy the provider keeps).
fn push_slots(
    store: &Arc<BlobStore>,
    src: NodeId,
    prov: NodeId,
    updates: &[(u64, Payload)],
    descs: &[ChunkDesc],
    slots: &[usize],
    async_writes: bool,
) -> BlobResult<()> {
    if !store.is_provider(prov) {
        return Err(BlobError::ChunkUnavailable(descs[slots[0]].id));
    }
    let total: u64 = slots.iter().map(|&s| updates[s].1.len()).sum();
    store.fabric.transfer(src, prov, total)?;
    store.provider_put(
        prov,
        slots
            .iter()
            .map(|&s| (descs[s].id, updates[s].1.clone()))
            .collect(),
    )?;
    if async_writes {
        store.fabric.disk_write_cached(prov, total)?;
    } else {
        store.fabric.disk_write(prov, total)?;
    }
    Ok(())
}

/// Record a push outcome at `prov` for every chunk it carried.
fn record_slots(outcome: &Mutex<PushOutcome>, prov: NodeId, slots: &[usize], res: BlobResult<()>) {
    let mut o = outcome.lock();
    match res {
        Ok(()) => {
            for &slot in slots {
                o.acked[slot].push(prov);
            }
        }
        Err(e) => {
            for &slot in slots {
                o.errors[slot] = Some(e.clone());
            }
        }
    }
}

/// Take the outcome back out of the shared task-side handle.
fn unwrap_shared(outcome: Arc<Mutex<PushOutcome>>) -> PushOutcome {
    Arc::try_unwrap(outcome)
        .unwrap_or_else(|a| Mutex::new(std::mem::take(&mut *a.lock())))
        .into_inner()
}

/// Metadata I/O with client-side caching and per-shard batched RPCs.
struct ClientNodeIo<'a> {
    client: &'a Client,
}

impl ClientNodeIo<'_> {
    fn shard_count(&self) -> usize {
        self.client.store.meta_shards()
    }
}

impl NodeIo for ClientNodeIo<'_> {
    fn fetch(&mut self, keys: &[NodeKey]) -> BlobResult<Vec<TreeNode>> {
        self.client.meta_fetch_calls.fetch_add(1, Ordering::Relaxed);
        let store = &self.client.store;
        let mut out: Vec<Option<TreeNode>> = vec![None; keys.len()];
        // Serve from the client cache first (nodes are immutable).
        let mut misses: Vec<(usize, NodeKey)> = Vec::new();
        {
            let cache = self.client.node_cache.lock();
            for (i, k) in keys.iter().enumerate() {
                match cache.get(k) {
                    Some(n) => out[i] = Some(n.clone()),
                    None => misses.push((i, *k)),
                }
            }
        }
        // Group misses by shard (dense buckets, ascending shard order —
        // deterministic RPCs); one RPC per shard (the "one metadata round
        // per level" batching).
        let mut by_shard: Vec<Vec<(usize, NodeKey)>> = vec![Vec::new(); self.shard_count()];
        for (i, k) in misses {
            by_shard[partition_of(k, self.shard_count())].push((i, k));
        }
        for (shard, group) in by_shard.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let server = store.topo.metadata[shard];
            let cfg = store.config();
            store.fabric.rpc(
                self.client.node,
                server,
                cfg.control_bytes + 8 * group.len() as u64,
                cfg.node_bytes * group.len() as u64,
            )?;
            let keys: Vec<NodeKey> = group.iter().map(|&(_, k)| k).collect();
            let nodes = store.meta_read_nodes(shard, keys)?;
            for ((i, _), node) in group.into_iter().zip(nodes) {
                out[i] = Some(node);
            }
        }
        // Fill cache.
        {
            let mut cache = self.client.node_cache.lock();
            for (i, k) in keys.iter().enumerate() {
                if let Some(n) = &out[i] {
                    cache.entry(*k).or_insert_with(|| n.clone());
                }
            }
        }
        Ok(out.into_iter().map(|o| o.expect("filled")).collect())
    }

    fn reserve(&mut self, n: u64) -> BlobResult<Range<u64>> {
        let store = &self.client.store;
        let c = store.config().control_bytes;
        store
            .fabric
            .rpc(self.client.node, store.topo.vmanager, c, c)?;
        store.vm_reserve_keys(n)
    }

    fn store(&mut self, nodes: Vec<(NodeKey, TreeNode)>) -> BlobResult<()> {
        let store = &self.client.store;
        // New nodes are immediately cacheable (cheap clones: inner nodes
        // are two keys, leaves share their replica set by refcount).
        {
            let mut cache = self.client.node_cache.lock();
            for (k, n) in &nodes {
                cache.insert(*k, n.clone());
            }
        }
        // Dense shard buckets, nodes moved (not cloned); ascending shard
        // order keeps RPCs deterministic.
        let mut by_shard: Vec<Vec<(NodeKey, TreeNode)>> = vec![Vec::new(); self.shard_count()];
        for (k, n) in nodes {
            by_shard[partition_of(k, self.shard_count())].push((k, n));
        }
        for (shard, group) in by_shard.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let server = store.topo.metadata[shard];
            let cfg = store.config();
            store.fabric.rpc(
                self.client.node,
                server,
                cfg.node_bytes * group.len() as u64,
                cfg.control_bytes,
            )?;
            store.meta_write_nodes(shard, group)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::BlobTopology;
    use bff_net::{Fabric, LocalFabric};

    fn setup(nodes: u32) -> (Arc<LocalFabric>, Client) {
        let fabric = LocalFabric::new(nodes as usize + 1);
        let compute: Vec<NodeId> = (0..nodes).map(NodeId).collect();
        let topo = BlobTopology::colocated(&compute, NodeId(nodes));
        let cfg = BlobConfig {
            chunk_size: 128,
            ..Default::default()
        };
        let store = BlobStore::new(cfg, topo, fabric.clone() as Arc<dyn Fabric>);
        let client = Client::new(store, NodeId(0));
        (fabric, client)
    }

    #[test]
    fn upload_then_read_back() {
        let (_f, client) = setup(4);
        let data = Payload::synth(1, 0, 1000);
        let (blob, v) = client.upload(data.clone()).unwrap();
        assert_eq!(v, Version(1));
        let got = client.read(blob, v, 0..1000).unwrap();
        assert!(got.content_eq(&data));
        // Sub-range reads.
        let got = client.read(blob, v, 100..300).unwrap();
        assert!(got.content_eq(&data.slice(100, 300)));
    }

    #[test]
    fn empty_blob_reads_zeros() {
        let (_f, client) = setup(2);
        let blob = client.create_blob(500).unwrap();
        let got = client.read(blob, Version(0), 0..500).unwrap();
        assert!(got.content_eq(&Payload::zeros(500)));
    }

    #[test]
    fn unaligned_write_read_modify_writes() {
        let (_f, client) = setup(4);
        let base = Payload::synth(2, 0, 1000);
        let (blob, v1) = client.upload(base.clone()).unwrap();
        // Overwrite 50..200 (chunk size 128: spans chunks 0 and 1).
        let patch = Payload::from(vec![0xABu8; 150]);
        let v2 = client.write(blob, v1, 50, patch.clone()).unwrap();
        assert_eq!(v2, Version(2));
        let got = client.read(blob, v2, 0..1000).unwrap();
        let expect = base.overwrite(50, patch);
        assert!(got.content_eq(&expect));
        // v1 still reads the original (shadowing).
        let got1 = client.read(blob, v1, 0..1000).unwrap();
        assert!(got1.content_eq(&base));
    }

    #[test]
    fn snapshots_are_totally_ordered_and_immutable() {
        let (_f, client) = setup(3);
        let (blob, v1) = client.upload(Payload::zeros(512)).unwrap();
        let mut versions = vec![v1];
        let mut expect = vec![Payload::zeros(512)];
        for i in 0..4u64 {
            let patch = Payload::synth(100 + i, 0, 64);
            let base = *versions.last().expect("non-empty");
            let v = client.write(blob, base, i * 128, patch.clone()).unwrap();
            versions.push(v);
            let prev = expect.last().expect("non-empty").clone();
            expect.push(prev.overwrite(i * 128, patch));
        }
        for (v, e) in versions.iter().zip(&expect) {
            let got = client.read(blob, *v, 0..512).unwrap();
            assert!(got.content_eq(e), "version {v} mismatch");
        }
    }

    #[test]
    fn conflicting_write_rejected() {
        let (_f, client) = setup(2);
        let (blob, v1) = client.upload(Payload::zeros(256)).unwrap();
        client
            .write(blob, v1, 0, Payload::from(vec![1u8; 10]))
            .unwrap();
        let err = client
            .write(blob, v1, 0, Payload::from(vec![2u8; 10]))
            .unwrap_err();
        assert!(matches!(err, BlobError::Conflict { .. }));
    }

    #[test]
    fn clone_is_independent_and_cheap() {
        let (_f, client) = setup(4);
        let base = Payload::synth(5, 0, 1024);
        let (a, va) = client.upload(base.clone()).unwrap();
        let chunks_before = client.store().total_chunks();
        let b = client.clone_blob(a, va).unwrap();
        assert_eq!(
            client.store().total_chunks(),
            chunks_before,
            "CLONE stores no chunk data"
        );
        // Clone reads identical content.
        let got = client.read(b, Version(1), 0..1024).unwrap();
        assert!(got.content_eq(&base));
        // Diverge the clone; origin unchanged.
        let vb = client
            .write(b, Version(1), 0, Payload::from(vec![9u8; 100]))
            .unwrap();
        let got_a = client.read(a, va, 0..1024).unwrap();
        assert!(got_a.content_eq(&base));
        let got_b = client.read(b, vb, 0..100).unwrap();
        assert!(got_b.content_eq(&Payload::from(vec![9u8; 100])));
    }

    #[test]
    fn commit_stores_only_differences() {
        let (_f, client) = setup(4);
        let image = Payload::synth(6, 0, 4096); // 32 chunks of 128
        let (a, va) = client.upload(image).unwrap();
        let bytes_initial = client.store().total_stored_bytes();
        assert_eq!(bytes_initial, 4096);
        let b = client.clone_blob(a, va).unwrap();
        // Dirty one chunk.
        client
            .write_chunks(b, Version(1), vec![(3, Payload::synth(7, 0, 128))])
            .unwrap();
        let bytes_after = client.store().total_stored_bytes();
        assert_eq!(
            bytes_after - bytes_initial,
            128,
            "one chunk of new data only"
        );
    }

    #[test]
    fn replication_survives_provider_failure() {
        let fabric = LocalFabric::new(5);
        let compute: Vec<NodeId> = (0..4).map(NodeId).collect();
        let topo = BlobTopology::colocated(&compute, NodeId(4));
        let cfg = BlobConfig {
            chunk_size: 128,
            replication: 2,
            ..Default::default()
        };
        let store = BlobStore::new(cfg, topo, fabric.clone() as Arc<dyn Fabric>);
        let client = Client::new(store, NodeId(0));
        let data = Payload::synth(8, 0, 1024);
        let (blob, v) = client.upload(data.clone()).unwrap();
        // Kill one provider; all chunks must still be readable.
        fabric.fail_node(NodeId(2));
        let got = client.read(blob, v, 0..1024).unwrap();
        assert!(got.content_eq(&data));
    }

    #[test]
    fn unreplicated_chunk_lost_on_failure() {
        let fabric = LocalFabric::new(3);
        let compute: Vec<NodeId> = (0..2).map(NodeId).collect();
        let topo = BlobTopology::colocated(&compute, NodeId(2));
        let cfg = BlobConfig {
            chunk_size: 128,
            replication: 1,
            ..Default::default()
        };
        let store = BlobStore::new(cfg, topo, fabric.clone() as Arc<dyn Fabric>);
        let client = Client::new(store, NodeId(0));
        let (blob, v) = client.upload(Payload::synth(9, 0, 512)).unwrap();
        fabric.fail_node(NodeId(1));
        let err = client.read(blob, v, 0..512).unwrap_err();
        assert!(matches!(err, BlobError::Net(NetError::NodeDown(_))));
    }

    #[test]
    fn out_of_bounds_rejected() {
        let (_f, client) = setup(2);
        let (blob, v) = client.upload(Payload::zeros(100)).unwrap();
        assert!(matches!(
            client.read(blob, v, 50..200),
            Err(BlobError::OutOfBounds { .. })
        ));
        assert!(matches!(
            client.write(blob, v, 90, Payload::zeros(20)),
            Err(BlobError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn read_multi_equivalent_to_per_run_reads() {
        let (_f, client) = setup(4);
        let data = Payload::synth(21, 0, 4096); // 32 chunks of 128
        let (blob, v) = client.upload(data.clone()).unwrap();
        // Mix of aligned, unaligned, overlapping, empty and whole ranges.
        let plans: Vec<Vec<Range<u64>>> = vec![
            vec![0..4096],
            vec![0..128, 256..384, 4000..4096],
            vec![10..50, 50..300, 299..301, 77..77],
            vec![4095..4096, 0..1],
            vec![],
        ];
        for plan in plans {
            let multi = client.read_multi(blob, v, &plan).unwrap();
            assert_eq!(multi.len(), plan.len());
            for (r, got) in plan.iter().zip(&multi) {
                let single = client.read(blob, v, r.clone()).unwrap();
                assert!(
                    got.content_eq(&single),
                    "range {r:?} differs between read and read_multi"
                );
            }
        }
        // Sparse blob: unwritten chunks read as zeros on both paths.
        let sparse = client.create_blob(1024).unwrap();
        let v1 = client
            .write(sparse, Version(0), 600, Payload::synth(3, 0, 50))
            .unwrap();
        let plan = vec![0..1024, 500..700, 0..128];
        let multi = client.read_multi(sparse, v1, &plan).unwrap();
        for (r, got) in plan.iter().zip(&multi) {
            let single = client.read(sparse, v1, r.clone()).unwrap();
            assert!(got.content_eq(&single), "sparse range {r:?} differs");
        }
    }

    #[test]
    fn read_multi_bounds_checked() {
        let (_f, client) = setup(2);
        let (blob, v) = client.upload(Payload::zeros(100)).unwrap();
        assert!(matches!(
            client.read_multi(blob, v, &[0..10, 50..200]),
            Err(BlobError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn cold_read_plan_costs_at_most_tree_depth_fetch_rounds() {
        // The acceptance bound: R non-local runs cost <= depth rounds
        // total, not R × depth. 4096 bytes / 128 = 32 chunks, span 32,
        // depth log2(32)+1 = 6.
        let (_f, client) = setup(4);
        let (blob, v) = client.upload(Payload::synth(22, 0, 4096)).unwrap();
        let plan: Vec<Range<u64>> = (0..16).map(|i| (i * 256)..(i * 256 + 64)).collect();
        let depth = 32u64.ilog2() as u64 + 1;

        // Per-run path on a fresh client: one descent per run.
        let per_run = Client::new(Arc::clone(client.store()), NodeId(1));
        for r in &plan {
            per_run.read(blob, v, r.clone()).unwrap();
        }
        let per_run_rounds = per_run.meta_fetch_calls();
        assert!(
            per_run_rounds >= plan.len() as u64 * 2,
            "per-run path descends per run (got {per_run_rounds} rounds)"
        );

        // Vectored path on another fresh client: a single descent.
        let multi = Client::new(Arc::clone(client.store()), NodeId(2));
        multi.read_multi(blob, v, &plan).unwrap();
        assert!(
            multi.meta_fetch_calls() <= depth,
            "cold vectored plan took {} rounds, depth is {depth}",
            multi.meta_fetch_calls()
        );

        // Warm re-read of the same plan: the descriptor cache skips the
        // metadata plane entirely (the paper's compute-node cache effect).
        let before = multi.meta_fetch_calls();
        multi.read_multi(blob, v, &plan).unwrap();
        assert_eq!(
            multi.meta_fetch_calls(),
            before,
            "warm reads must not descend the tree"
        );
        // A full read resolves the remaining chunks once, then is free too.
        multi
            .read_multi(blob, v, std::slice::from_ref(&(0..4096)))
            .unwrap();
        let after_full = multi.meta_fetch_calls();
        multi
            .read_multi(blob, v, std::slice::from_ref(&(0..4096)))
            .unwrap();
        assert_eq!(multi.meta_fetch_calls(), after_full);
    }

    #[test]
    fn desc_cache_never_serves_stale_versions() {
        // read → commit from another client → read must observe the new
        // version: versions are explicit, so the second read targets the
        // *new* snapshot and must see its content, never v1 descriptors.
        let (_f, client_a) = setup(4);
        let data = Payload::synth(30, 0, 1024);
        let (blob, v1) = client_a.upload(data.clone()).unwrap();
        let a = Client::new(Arc::clone(client_a.store()), NodeId(1));
        let warm = a
            .read_multi(blob, v1, std::slice::from_ref(&(0..1024)))
            .unwrap();
        assert!(warm[0].content_eq(&data));

        // Another client commits a new snapshot.
        let b = Client::new(Arc::clone(client_a.store()), NodeId(2));
        let patch = Payload::synth(31, 0, 128);
        let v2 = b.write_chunks(blob, v1, vec![(2, patch.clone())]).unwrap();
        assert_eq!(b.latest_version(blob).unwrap(), v2);

        // Client A discovers the new version and reads it: fresh content.
        let latest = a.latest_version(blob).unwrap();
        assert_eq!(latest, v2);
        let got = a.read_multi(blob, latest, &[256..384, 0..128]).unwrap();
        assert!(got[0].content_eq(&patch), "must observe the new chunk");
        assert!(got[1].content_eq(&data.slice(0, 128)));
        // And v1 still reads the original (snapshots immutable).
        let old = a
            .read_multi(blob, v1, std::slice::from_ref(&(256..384)))
            .unwrap();
        assert!(old[0].content_eq(&data.slice(256, 384)));
    }

    #[test]
    fn committer_reads_own_snapshot_without_metadata_rounds() {
        // write_chunks seeds the descriptor cache for the new version
        // (base entry + published delta).
        let (_f, client) = setup(4);
        let (blob, v1) = client.upload(Payload::synth(33, 0, 1024)).unwrap();
        client
            .read_multi(blob, v1, std::slice::from_ref(&(0..1024)))
            .unwrap(); // resolve v1 fully
        let v2 = client
            .write_chunks(blob, v1, vec![(0, Payload::synth(34, 0, 128))])
            .unwrap();
        // The commit itself descends (tree shadowing); the *read* of the
        // freshly published snapshot must not.
        let rounds_after_commit = client.meta_fetch_calls();
        client
            .read_multi(blob, v2, std::slice::from_ref(&(0..1024)))
            .unwrap();
        assert_eq!(
            client.meta_fetch_calls(),
            rounds_after_commit,
            "reading a self-committed snapshot must be metadata-free"
        );
    }

    #[test]
    fn clone_carries_descriptor_cache_over() {
        let (_f, client) = setup(4);
        let data = Payload::synth(35, 0, 1024);
        let (blob, v) = client.upload(data.clone()).unwrap();
        client
            .read_multi(blob, v, std::slice::from_ref(&(0..1024)))
            .unwrap();
        let rounds = client.meta_fetch_calls();
        let cloned = client.clone_blob(blob, v).unwrap();
        let got = client
            .read_multi(cloned, Version(1), std::slice::from_ref(&(0..1024)))
            .unwrap();
        assert!(got[0].content_eq(&data));
        assert_eq!(
            client.meta_fetch_calls(),
            rounds,
            "clone shares the source tree, so its cache carries over"
        );
    }

    #[test]
    fn read_multi_survives_provider_failure() {
        let fabric = LocalFabric::new(5);
        let compute: Vec<NodeId> = (0..4).map(NodeId).collect();
        let topo = BlobTopology::colocated(&compute, NodeId(4));
        let cfg = BlobConfig {
            chunk_size: 128,
            replication: 2,
            ..Default::default()
        };
        let store = BlobStore::new(cfg, topo, fabric.clone() as Arc<dyn Fabric>);
        let client = Client::new(store, NodeId(0));
        let data = Payload::synth(36, 0, 2048);
        let (blob, v) = client.upload(data.clone()).unwrap();
        fabric.fail_node(NodeId(2));
        let got = client.read_multi(blob, v, &[0..2048, 100..300]).unwrap();
        assert!(
            got[0].content_eq(&data),
            "batched path must fail over per chunk"
        );
        assert!(got[1].content_eq(&data.slice(100, 300)));
    }

    /// A fabric with a *stale failure detector*: operations against down
    /// nodes fail (the inner fabric's truth), but `is_down` claims
    /// everything is up — so allocation cannot avoid the dead provider
    /// and the push-side per-replica failover has to handle it.
    struct StaleViewFabric {
        inner: Arc<LocalFabric>,
    }

    impl Fabric for StaleViewFabric {
        fn now_us(&self) -> u64 {
            self.inner.now_us()
        }
        fn transfer(&self, src: NodeId, dst: NodeId, bytes: u64) -> Result<(), NetError> {
            self.inner.transfer(src, dst, bytes)
        }
        fn transfer_all(&self, xfers: &[bff_net::Transfer]) -> Result<(), NetError> {
            self.inner.transfer_all(xfers)
        }
        fn rpc(&self, src: NodeId, dst: NodeId, req: u64, resp: u64) -> Result<(), NetError> {
            self.inner.rpc(src, dst, req, resp)
        }
        fn disk_read(&self, node: NodeId, bytes: u64) -> Result<(), NetError> {
            self.inner.disk_read(node, bytes)
        }
        fn disk_write(&self, node: NodeId, bytes: u64) -> Result<(), NetError> {
            self.inner.disk_write(node, bytes)
        }
        fn disk_write_cached(&self, node: NodeId, bytes: u64) -> Result<(), NetError> {
            self.inner.disk_write_cached(node, bytes)
        }
        fn disk_sync(&self, node: NodeId) -> Result<(), NetError> {
            self.inner.disk_sync(node)
        }
        fn compute(&self, node: NodeId, micros: u64) {
            self.inner.compute(node, micros)
        }
        fn is_down(&self, _node: NodeId) -> bool {
            false // the stale view
        }
        fn stats(&self) -> &bff_net::TrafficStats {
            self.inner.stats()
        }
    }

    fn setup_mode(
        nodes: u32,
        replication: usize,
        mode: crate::api::ReplicationMode,
    ) -> (Arc<LocalFabric>, Client) {
        let fabric = LocalFabric::new(nodes as usize + 1);
        let compute: Vec<NodeId> = (0..nodes).map(NodeId).collect();
        let topo = BlobTopology::colocated(&compute, NodeId(nodes));
        let cfg = BlobConfig {
            chunk_size: 128,
            replication,
            replication_mode: mode,
            // These tests count data-plane transfers and messages; the
            // cluster index's publish gossip would shift the counts.
            cluster_dedup: false,
            ..Default::default()
        };
        let store = BlobStore::new(cfg, topo, fabric.clone() as Arc<dyn Fabric>);
        (fabric, Client::new(store, NodeId(0)))
    }

    /// Which providers hold each chunk id, as one sorted fingerprint per
    /// store (chunk ids are allocated deterministically, so equal
    /// fingerprints mean identical replica sets).
    fn replica_fingerprint(client: &Client, max_chunk: u64) -> Vec<(u64, Vec<u32>)> {
        let store = client.store();
        let mut out = Vec::new();
        for id in 1..=max_chunk {
            let mut holders: Vec<u32> = store
                .topology()
                .providers
                .iter()
                .filter(|&&p| {
                    store
                        .providers()
                        .lock(p)
                        .unwrap()
                        .has(crate::api::ChunkId(id))
                })
                .map(|p| p.0)
                .collect();
            holders.sort_unstable();
            out.push((id, holders));
        }
        out
    }

    #[test]
    fn replication_modes_equivalent_to_sequential_reference() {
        // Chain and fan-out must produce byte-identical blob contents and
        // identical replica sets vs the sequential-push reference.
        use crate::api::ReplicationMode::*;
        let image = Payload::synth(70, 0, 2048); // 16 chunks of 128
        let patch: Vec<(u64, Payload)> = vec![
            (0, Payload::synth(71, 0, 128)),
            (5, Payload::synth(72, 0, 128)),
            (15, Payload::synth(73, 0, 128)),
        ];
        let mut results = Vec::new();
        for mode in [Sequential, Fanout, Chain, ChainPipelined] {
            let (_f, client) = setup_mode(4, 3, mode);
            let (blob, v1) = client.upload(image.clone()).unwrap();
            let v2 = client.write_chunks(blob, v1, patch.clone()).unwrap();
            let content = client.read(blob, v2, 0..2048).unwrap();
            let fingerprint = replica_fingerprint(&client, 16 + 3);
            let loads = client.store().provider_loads();
            results.push((mode, content, fingerprint, loads));
        }
        let (_, ref_content, ref_fp, ref_loads) = &results[0];
        for (mode, content, fp, loads) in &results[1..] {
            assert!(
                content.content_eq(ref_content),
                "{mode:?} content differs from sequential reference"
            );
            assert_eq!(fp, ref_fp, "{mode:?} replica sets differ");
            assert_eq!(loads, ref_loads, "{mode:?} per-provider loads differ");
        }
        // Every chunk got its full replica set.
        assert!(ref_fp.iter().all(|(_, holders)| holders.len() == 3));
    }

    #[test]
    fn fanout_batches_one_transfer_per_provider() {
        use crate::api::ReplicationMode::*;
        let updates: Vec<(u64, Payload)> = (0..16)
            .map(|i| (i, Payload::synth(80 + i, 0, 128)))
            .collect();
        let count_transfers = |mode| {
            // Write from the service node so every push crosses the
            // network (self-transfers are free and uncounted).
            let (f, client) = setup_mode(4, 2, mode);
            let client = Client::new(Arc::clone(client.store()), NodeId(4));
            let blob = client.create_blob(2048).unwrap();
            let before = f.stats().transfer_count();
            client
                .write_chunks(blob, Version(0), updates.clone())
                .unwrap();
            f.stats().transfer_count() - before
        };
        let sequential = count_transfers(Sequential);
        let fanout = count_transfers(Fanout);
        let chain = count_transfers(Chain);
        // Sequential: one transfer per (chunk, replica) = 32. Batched
        // modes: one per provider group / chain hop — bounded by
        // providers × replication = 8, not by the chunk count.
        assert_eq!(sequential, 32);
        assert!(fanout <= 8, "fanout used {fanout} transfers");
        assert!(chain <= 8, "chain used {chain} transfers");
    }

    #[test]
    fn chain_offloads_client_egress_to_providers() {
        use crate::api::ReplicationMode::*;
        let updates: Vec<(u64, Payload)> = (0..8)
            .map(|i| (i, Payload::synth(90 + i, 0, 128)))
            .collect();
        let egress = |mode| {
            // Service-node writer: all pushes cross the network.
            let (f, client) = setup_mode(4, 2, mode);
            let client = Client::new(Arc::clone(client.store()), NodeId(4));
            let blob = client.create_blob(1024).unwrap();
            f.stats().reset();
            client
                .write_chunks(blob, Version(0), updates.clone())
                .unwrap();
            (
                f.stats().node(NodeId(4)).sent,
                f.stats().total_network_bytes(),
            )
        };
        let (fan_sent, fan_total) = egress(Fanout);
        let (chain_sent, chain_total) = egress(Chain);
        // Both move the same payload volume in total...
        assert_eq!(fan_total, chain_total);
        // ...but the chain client sends each byte once, the fan-out
        // client once per replica. (Client egress also carries the
        // metadata/control bytes, identical in both.)
        assert_eq!(fan_sent - chain_sent, 8 * 128);
    }

    /// Providers on `0..providers`, managers *and metadata* on the
    /// service node — so failing a provider kills only its chunk store,
    /// not a metadata shard (the paper's metadata servers are a separate
    /// concern from provider failure).
    fn topo_service_meta(providers: u32, service: u32) -> BlobTopology {
        BlobTopology {
            vmanager: NodeId(service),
            pmanager: NodeId(service),
            metadata: vec![NodeId(service)],
            providers: (0..providers).map(NodeId).collect(),
        }
    }

    #[test]
    fn write_skips_down_providers_at_allocation() {
        let fabric = LocalFabric::new(5);
        let cfg = BlobConfig {
            chunk_size: 128,
            ..Default::default()
        };
        let store = BlobStore::new(
            cfg,
            topo_service_meta(4, 4),
            fabric.clone() as Arc<dyn Fabric>,
        );
        let client = Client::new(store, NodeId(4));
        fabric.fail_node(NodeId(2));
        let data = Payload::synth(60, 0, 2048); // 16 chunks over 4 providers
        let (blob, v) = client.upload(data.clone()).unwrap();
        let loads = client.store().provider_loads();
        assert_eq!(loads[2], 0, "down provider must receive no chunks");
        assert_eq!(loads.iter().sum::<u64>(), 2048);
        // Everything reads back without touching the dead node.
        let got = client.read(blob, v, 0..2048).unwrap();
        assert!(got.content_eq(&data));
    }

    #[test]
    fn per_replica_failover_publishes_surviving_replicas() {
        // A provider dies between the failure detector's last sweep and
        // the push (stale view): allocation still targets it, so the
        // pipeline must drop that replica and publish the survivors.
        for mode in [
            crate::api::ReplicationMode::Sequential,
            crate::api::ReplicationMode::Fanout,
            crate::api::ReplicationMode::Chain,
            crate::api::ReplicationMode::ChainPipelined,
        ] {
            let inner = LocalFabric::new(4);
            let fabric: Arc<dyn Fabric> = Arc::new(StaleViewFabric {
                inner: Arc::clone(&inner),
            });
            let cfg = BlobConfig {
                chunk_size: 128,
                replication: 3,
                replication_mode: mode,
                ..Default::default()
            };
            let store = BlobStore::new(cfg, topo_service_meta(3, 3), fabric);
            let client = Client::new(store, NodeId(3));
            inner.fail_node(NodeId(1));
            let data = Payload::synth(61, 0, 512);
            let (blob, v) = client.upload(data.clone()).unwrap();
            // The dead replica stored nothing; the others hold everything.
            let loads = client.store().provider_loads();
            assert_eq!(loads[1], 0, "{mode:?}: dead replica must hold nothing");
            assert_eq!(loads[0], 512, "{mode:?}");
            assert_eq!(loads[2], 512, "{mode:?}");
            // Reads succeed off the surviving replicas.
            let got = client.read(blob, v, 0..512).unwrap();
            assert!(got.content_eq(&data), "{mode:?}");
        }
    }

    #[test]
    fn write_fails_only_when_no_replica_survives() {
        let inner = LocalFabric::new(3);
        let fabric: Arc<dyn Fabric> = Arc::new(StaleViewFabric {
            inner: Arc::clone(&inner),
        });
        let cfg = BlobConfig {
            chunk_size: 128,
            replication: 2,
            ..Default::default()
        };
        let store = BlobStore::new(cfg, topo_service_meta(2, 2), fabric);
        let client = Client::new(store, NodeId(2));
        let blob = client.create_blob(128).unwrap();
        inner.fail_node(NodeId(0));
        inner.fail_node(NodeId(1));
        let err = client
            .write_chunks(blob, Version(0), vec![(0, Payload::zeros(128))])
            .unwrap_err();
        assert!(matches!(err, BlobError::Net(NetError::NodeDown(_))));
    }

    /// Setup with an explicit dedup setting (tests must not depend on
    /// the `BFF_DEDUP` environment default — CI flips it).
    fn setup_dedup(nodes: u32, replication: usize, dedup: bool) -> (Arc<LocalFabric>, Client) {
        let fabric = LocalFabric::new(nodes as usize + 1);
        let compute: Vec<NodeId> = (0..nodes).map(NodeId).collect();
        let topo = BlobTopology::colocated(&compute, NodeId(nodes));
        let cfg = BlobConfig {
            chunk_size: 128,
            replication,
            dedup,
            ..Default::default()
        };
        let store = BlobStore::new(cfg, topo, fabric.clone() as Arc<dyn Fabric>);
        (fabric, Client::new(store, NodeId(0)))
    }

    /// Refcounts of chunk `id` across all providers holding it.
    fn refcounts(client: &Client, id: u64) -> Vec<u64> {
        client
            .store()
            .topology()
            .providers
            .iter()
            .filter_map(|&p| {
                client
                    .store()
                    .providers()
                    .refcount(p, crate::api::ChunkId(id))
            })
            .collect()
    }

    #[test]
    fn lru_cache_survives_long_version_churn() {
        // Regression for the old wholesale eviction: resolving >64
        // snapshots used to flush the *entire* descriptor cache, so a
        // frequently-read snapshot paid fresh metadata descents over and
        // over. With per-entry LRU, the hot entry stays resident through
        // arbitrary churn.
        let (_f, client) = setup(4);
        let hot_data = Payload::synth(40, 0, 1024);
        let (hot, vhot) = client.upload(hot_data).unwrap(); // 8 chunks, fully seeded
        let churn = client.create_blob(128).unwrap();
        let mut versions = vec![Version(0)];
        for i in 0..150u64 {
            let v = client
                .write(
                    churn,
                    *versions.last().unwrap(),
                    0,
                    Payload::synth(50 + i, 0, 128),
                )
                .unwrap();
            versions.push(v);
        }
        // Touch 150 distinct (blob, version) entries — far past the
        // 64-version bound — re-reading the hot snapshot throughout.
        for (i, v) in versions.iter().skip(1).enumerate() {
            client.read(churn, *v, 0..128).unwrap();
            if i % 2 == 0 {
                let before = client.meta_fetch_calls();
                client.read(hot, vhot, 0..1024).unwrap();
                assert_eq!(
                    client.meta_fetch_calls(),
                    before,
                    "hot snapshot re-resolved at churn step {i}: the cache \
                     was flushed wholesale"
                );
            }
        }
        let ctx = client.context();
        assert!(
            ctx.desc_entries() <= ctx.desc_capacity(),
            "LRU bound violated: {} > {}",
            ctx.desc_entries(),
            ctx.desc_capacity()
        );
    }

    #[test]
    fn dedup_commits_identical_content_by_reference() {
        let (_f, client) = setup_dedup(4, 1, true);
        let (a, va) = client.upload(Payload::synth(60, 0, 512)).unwrap(); // ids 1..=4
        let content = Payload::synth(77, 0, 128);
        let v2 = client
            .write_chunks(a, va, vec![(0, content.clone())])
            .unwrap(); // id 5
        let stored = client.store().total_stored_bytes();
        assert_eq!(refcounts(&client, 5), vec![1]);

        // A different blob commits the same bytes: no new storage, the
        // leaf references chunk 5 and bumps its refcount.
        let b = client.create_blob(512).unwrap();
        let vb = client
            .write_chunks(b, Version(0), vec![(1, content.clone())])
            .unwrap();
        assert_eq!(
            client.store().total_stored_bytes(),
            stored,
            "identical content must not grow provider storage"
        );
        assert_eq!(refcounts(&client, 5), vec![2]);
        let got = client.read(b, vb, 128..256).unwrap();
        assert!(got.content_eq(&content));
        // The origin snapshot still reads its copy.
        let got = client.read(a, v2, 0..128).unwrap();
        assert!(got.content_eq(&content));
        assert_eq!(client.context().stats().dedup_hits, 1);

        // Dedup off: the same sequence stores the chunk twice.
        let (_f2, off) = setup_dedup(4, 1, false);
        let (a2, va2) = off.upload(Payload::synth(60, 0, 512)).unwrap();
        off.write_chunks(a2, va2, vec![(0, content.clone())])
            .unwrap();
        let stored_off = off.store().total_stored_bytes();
        let b2 = off.create_blob(512).unwrap();
        off.write_chunks(b2, Version(0), vec![(1, content.clone())])
            .unwrap();
        assert_eq!(off.store().total_stored_bytes(), stored_off + 128);
    }

    #[test]
    fn intra_commit_duplicates_collapse() {
        let (_f, client) = setup_dedup(4, 1, true);
        // Four identical all-zero chunks upload as one stored chunk with
        // four references.
        let (blob, v) = client.upload(Payload::zeros(512)).unwrap();
        assert_eq!(client.store().total_stored_bytes(), 128);
        assert_eq!(client.store().total_chunks(), 1);
        assert_eq!(refcounts(&client, 1), vec![4]);
        let got = client.read(blob, v, 0..512).unwrap();
        assert!(got.content_eq(&Payload::zeros(512)));
    }

    #[test]
    fn dedup_reads_byte_identical_to_dedup_off() {
        // The same commit sequence through both configurations must be
        // byte-identical on every snapshot (the content-plane invariant
        // the property suite checks at scale).
        let patches: Vec<(u64, Payload)> = vec![
            (0, Payload::zeros(128)),
            (3, Payload::synth(81, 0, 128)),
            (5, Payload::zeros(128)),
            (7, Payload::synth(81, 0, 128)),
        ];
        let mut snapshots: Vec<Vec<Payload>> = Vec::new();
        for dedup in [true, false] {
            let (_f, client) = setup_dedup(4, 2, dedup);
            let (blob, v1) = client.upload(Payload::synth(80, 0, 1024)).unwrap();
            let v2 = client.write_chunks(blob, v1, patches.clone()).unwrap();
            let v3 = client
                .write_chunks(blob, v2, vec![(1, Payload::zeros(128))])
                .unwrap();
            snapshots.push(
                [v1, v2, v3]
                    .iter()
                    .map(|&v| client.read(blob, v, 0..1024).unwrap())
                    .collect(),
            );
        }
        for (on, off) in snapshots[0].iter().zip(&snapshots[1]) {
            assert!(on.content_eq(off), "dedup changed snapshot content");
        }
    }

    #[test]
    fn dedup_conflict_rolls_back_refcounts() {
        let (_f, client) = setup_dedup(4, 2, true);
        let (blob, v1) = client.upload(Payload::synth(90, 0, 512)).unwrap();
        let content = Payload::synth(91, 0, 128);
        client
            .write_chunks(blob, v1, vec![(0, content.clone())])
            .unwrap(); // id 5
        let before = refcounts(&client, 5);
        assert_eq!(before, vec![1, 1], "one reference per replica");
        // A second commit from the same base dedups onto chunk 5, then
        // loses the publish race: its references must be released.
        let err = client
            .write_chunks(blob, v1, vec![(1, content.clone())])
            .unwrap_err();
        assert!(matches!(err, BlobError::Conflict { .. }));
        assert_eq!(
            refcounts(&client, 5),
            before,
            "failed publish must release its dedup references"
        );
        // Releasing a chunk that was never stored is a clean no-op.
        assert!(!client
            .store()
            .providers()
            .release(NodeId(0), crate::api::ChunkId(999)));
    }

    #[test]
    fn accounted_commit_reports_only_its_own_reuse() {
        // Two co-located clients share one NodeContext; each commit must
        // report exactly its own by-reference bytes, not a delta of the
        // shared counters (which interleave across committers).
        let (_f, c1) = setup_dedup(4, 1, true);
        let c2 = Client::new(Arc::clone(c1.store()), NodeId(0));
        let (b1, v1) = c1.upload(Payload::synth(80, 0, 512)).unwrap();
        let (b2, v2) = c2.upload(Payload::synth(81, 0, 512)).unwrap();
        let shared = Payload::synth(82, 0, 128);
        // c1 stores the content fresh: nothing reused.
        let (v1b, r1) = c1
            .write_chunks_accounted(b1, v1, vec![(0, shared.clone())])
            .unwrap();
        assert_eq!(r1, 0, "fresh content must report zero reuse");
        // c2 commits the same content (index hit) plus a fresh chunk:
        // exactly the shared chunk's bytes are reported, never c1's.
        let (_, r2) = c2
            .write_chunks_accounted(
                b2,
                v2,
                vec![(0, shared.clone()), (1, Payload::synth(83, 0, 128))],
            )
            .unwrap();
        assert_eq!(r2, 128, "exactly the deduped chunk's bytes");
        // An intra-commit collapse is attributed to the committing
        // client as well: 3 identical fresh chunks -> 2 by reference.
        let fresh = Payload::synth(84, 0, 128);
        let (_, r3) = c1
            .write_chunks_accounted(
                b1,
                v1b,
                vec![(1, fresh.clone()), (2, fresh.clone()), (3, fresh.clone())],
            )
            .unwrap();
        assert_eq!(r3, 256, "uses beyond the first commit by reference");
    }

    #[test]
    fn digest_collision_never_publishes_wrong_bytes() {
        use crate::api::ChunkId;
        let (_f, client) = setup_dedup(4, 1, true);
        let (blob, v1) = client.upload(Payload::synth(98, 0, 512)).unwrap(); // ids 1..=4
        let a = Payload::synth(99, 0, 128);
        let b = Payload::from(vec![0x5Au8; 128]);
        let v2 = client.write_chunks(blob, v1, vec![(0, a.clone())]).unwrap(); // id 5 stores A
                                                                               // Poison the digest index: claim B's content key maps to the
                                                                               // chunk storing A — a simulated 64-bit digest collision.
        let prov = client
            .store()
            .topology()
            .providers
            .iter()
            .copied()
            .find(|&p| client.store().providers().refcount(p, ChunkId(5)).is_some())
            .expect("chunk 5 stored somewhere");
        client.context().digest_record(
            (b.len(), b.content_digest(false)),
            ChunkDesc {
                id: ChunkId(5),
                replicas: vec![prov].into(),
            },
        );
        // Committing B must detect the mismatch, push fresh, and leave
        // chunk 5's refcount untouched.
        let stored = client.store().total_stored_bytes();
        let v3 = client.write_chunks(blob, v2, vec![(1, b.clone())]).unwrap();
        assert_eq!(client.store().total_stored_bytes(), stored + 128);
        assert_eq!(refcounts(&client, 5), vec![1]);
        let got = client.read(blob, v3, 128..256).unwrap();
        assert!(
            got.content_eq(&b),
            "a digest collision must never publish the wrong bytes"
        );
    }

    #[test]
    fn failed_publish_releases_freshly_pushed_chunks() {
        // A commit that loses the publish race has already pushed its
        // *new* chunks to the providers; the rollback must release them
        // (fresh puts carry refcount 1), not orphan them — otherwise
        // provider storage grows without bound under commit contention.
        for dedup in [true, false] {
            let (_f, client) = setup_dedup(4, 2, dedup);
            let (blob, v1) = client.upload(Payload::synth(95, 0, 512)).unwrap();
            client
                .write_chunks(blob, v1, vec![(0, Payload::synth(96, 0, 128))])
                .unwrap();
            let stored = client.store().total_stored_bytes();
            let chunks = client.store().total_chunks();
            // Conflicting commit with brand-new content.
            let err = client
                .write_chunks(blob, v1, vec![(1, Payload::synth(97, 0, 128))])
                .unwrap_err();
            assert!(matches!(err, BlobError::Conflict { .. }), "dedup={dedup}");
            assert_eq!(
                client.store().total_stored_bytes(),
                stored,
                "dedup={dedup}: conflicted push left orphaned bytes"
            );
            assert_eq!(client.store().total_chunks(), chunks, "dedup={dedup}");
        }
    }

    #[test]
    fn chain_pipelined_keeps_client_egress_at_one_x() {
        use crate::api::ReplicationMode::*;
        let updates: Vec<(u64, Payload)> = (0..8)
            .map(|i| (i, Payload::synth(110 + i, 0, 128)))
            .collect();
        let egress = |mode| {
            let (f, client) = setup_mode(4, 2, mode);
            let client = Client::new(Arc::clone(client.store()), NodeId(4));
            let blob = client.create_blob(1024).unwrap();
            f.stats().reset();
            client
                .write_chunks(blob, Version(0), updates.clone())
                .unwrap();
            (
                f.stats().node(NodeId(4)).sent,
                f.stats().total_network_bytes(),
            )
        };
        let (chain_sent, chain_total) = egress(Chain);
        let (pipe_sent, pipe_total) = egress(ChainPipelined);
        // Same payload volume end to end, and the pipelined client also
        // sends each byte exactly once — pipelining reshapes the
        // transfers (one per (chunk, hop) instead of one per hop), it
        // does not move more data.
        assert_eq!(chain_total, pipe_total);
        assert_eq!(chain_sent, pipe_sent);
    }

    /// Setup with prefetch explicitly on and a second node's client, so
    /// the cross-node pattern flow (hint → board → prefetch) is
    /// observable regardless of the `BFF_PREFETCH` environment.
    fn setup_prefetch(chunk_size: u64) -> (Arc<LocalFabric>, Client, Client) {
        let fabric = LocalFabric::new(5);
        let compute: Vec<NodeId> = (0..4).map(NodeId).collect();
        let topo = BlobTopology::colocated(&compute, NodeId(4));
        let cfg = BlobConfig {
            chunk_size,
            prefetch: true,
            // These tests pin the unfiltered read-ahead mechanics; the
            // confidence filter has its own tests below.
            prefetch_min_publishers: 1,
            ..Default::default()
        };
        let store = BlobStore::new(cfg, topo, fabric.clone() as Arc<dyn Fabric>);
        let a = Client::new(Arc::clone(&store), NodeId(0));
        let b = Client::new(store, NodeId(1));
        (fabric, a, b)
    }

    #[test]
    fn hints_publish_peer_pattern_and_prefetch_lands_in_cache() {
        let (_f, a, b) = setup_prefetch(128);
        let data = Payload::synth(120, 0, 4096); // 32 chunks
        let (blob, v) = a.upload(data.clone()).unwrap();
        // Node 0's VM faults in a boot-like window: the hint publishes
        // its first-touch order to the board.
        a.hint_access(blob, v, std::slice::from_ref(&(0..2048)));
        let seq = a
            .store()
            .pattern_board()
            .sequence((blob, v))
            .expect("pattern published");
        assert_eq!(*seq, (0..16).collect::<Vec<u64>>());

        // Node 1 has touched nothing: a prefetch step pulls the peer
        // window into ITS node-shared chunk cache.
        assert!(b.has_prefetch_work(blob, v));
        let landed = b.prefetch_chunks(blob, v, 8).unwrap();
        assert_eq!(landed, 8);
        let stats = b.context().prefetch_stats();
        assert_eq!(stats.prefetched_chunks, 8);
        assert_eq!(stats.prefetched_bytes, 8 * 128);
        assert_eq!(stats.cached_chunks, 8);

        // The demand read of the prefetched window is served from the
        // cache: zero provider traffic, byte-identical content.
        let transfers_before = _f.stats().transfer_count();
        let got = b.read(blob, v, 0..1024).unwrap();
        assert!(got.content_eq(&data.slice(0, 1024)));
        assert_eq!(
            _f.stats().transfer_count(),
            transfers_before,
            "prefetched chunks must not be re-fetched from providers"
        );
        let stats = b.context().prefetch_stats();
        assert_eq!(stats.hits, 8, "every prefetched chunk served a read");
        assert_eq!(stats.wasted_chunks, 0);
    }

    #[test]
    fn prefetch_is_incremental_and_never_refetches() {
        let (_f, a, b) = setup_prefetch(128);
        let (blob, v) = a.upload(Payload::synth(121, 0, 4096)).unwrap();
        a.hint_access(blob, v, std::slice::from_ref(&(0..4096)));
        // Two bounded steps walk the peer sequence incrementally.
        assert_eq!(b.prefetch_chunks(blob, v, 10).unwrap(), 10);
        assert_eq!(b.prefetch_chunks(blob, v, 10).unwrap(), 10);
        // A chunk is claimed at most once per node: replaying the
        // sequence fetches only the remainder, then nothing.
        assert_eq!(b.prefetch_chunks(blob, v, 100).unwrap(), 12);
        assert!(!b.has_prefetch_work(blob, v));
        assert_eq!(b.prefetch_chunks(blob, v, 100).unwrap(), 0);
        assert_eq!(b.context().prefetch_stats().prefetched_chunks, 32);
    }

    #[test]
    fn prefetch_skips_chunks_this_node_already_read() {
        let (_f, a, b) = setup_prefetch(128);
        let (blob, v) = a.upload(Payload::synth(122, 0, 2048)).unwrap();
        a.hint_access(blob, v, std::slice::from_ref(&(0..2048)));
        // Node 1 demand-reads half the window first.
        b.read(blob, v, 0..1024).unwrap();
        b.hint_access(blob, v, std::slice::from_ref(&(0..1024)));
        let landed = b.prefetch_chunks(blob, v, 100).unwrap();
        assert_eq!(landed, 8, "only the unseen half is prefetched");
    }

    #[test]
    fn prefetch_disabled_is_inert() {
        let fabric = LocalFabric::new(5);
        let compute: Vec<NodeId> = (0..4).map(NodeId).collect();
        let topo = BlobTopology::colocated(&compute, NodeId(4));
        let cfg = BlobConfig {
            chunk_size: 128,
            prefetch: false,
            ..Default::default()
        };
        let off_store = BlobStore::new(cfg, topo, fabric as Arc<dyn Fabric>);
        let off = Client::new(off_store, NodeId(0));
        let (blob, v) = off.upload(Payload::synth(123, 0, 1024)).unwrap();
        off.hint_access(blob, v, std::slice::from_ref(&(0..1024)));
        assert!(off.store().pattern_board().is_empty());
        assert!(!off.has_prefetch_work(blob, v));
        assert_eq!(off.prefetch_chunks(blob, v, 8).unwrap(), 0);
        assert_eq!(off.context().prefetch_stats(), Default::default());

        // A chunk cache that cannot hold one chunk — zero, or bounded
        // below the chunk size so every insert would self-evict —
        // disables the pipeline too, even with the flag on: read-ahead
        // with nowhere to land the data would fetch every predicted
        // chunk twice.
        for cache_bytes in [0u64, 64] {
            let fabric = LocalFabric::new(5);
            let compute: Vec<NodeId> = (0..4).map(NodeId).collect();
            let topo = BlobTopology::colocated(&compute, NodeId(4));
            let cfg = BlobConfig {
                chunk_size: 128,
                prefetch: true,
                chunk_cache_bytes: cache_bytes,
                ..Default::default()
            };
            let store = BlobStore::new(cfg, topo, fabric.clone() as Arc<dyn Fabric>);
            let capless = Client::new(store, NodeId(0));
            let (blob, v) = capless.upload(Payload::synth(124, 0, 4096)).unwrap();
            capless.hint_access(blob, v, std::slice::from_ref(&(0..4096)));
            assert!(capless.store().pattern_board().is_empty());
            assert!(!capless.has_prefetch_work(blob, v));
            let transfers = fabric.stats().transfer_count();
            assert_eq!(capless.prefetch_chunks(blob, v, 8).unwrap(), 0);
            assert_eq!(
                fabric.stats().transfer_count(),
                transfers,
                "cache bound {cache_bytes}: capless prefetch must move nothing"
            );
            assert_eq!(capless.context().prefetch_stats(), Default::default());
        }
    }

    #[test]
    fn strong_digest_dedups_without_byte_verify() {
        let fabric = LocalFabric::new(5);
        let compute: Vec<NodeId> = (0..4).map(NodeId).collect();
        let topo = BlobTopology::colocated(&compute, NodeId(4));
        let cfg = BlobConfig {
            chunk_size: 128,
            dedup: true,
            strong_digest: true,
            ..Default::default()
        };
        let store = BlobStore::new(cfg, topo, fabric as Arc<dyn Fabric>);
        let client = Client::new(store, NodeId(0));
        let (a, va) = client.upload(Payload::synth(60, 0, 512)).unwrap();
        let content = Payload::synth(77, 0, 128);
        client
            .write_chunks(a, va, vec![(0, content.clone())])
            .unwrap();
        let stored = client.store().total_stored_bytes();
        // Same bytes from another blob: committed by reference off the
        // SHA-256 index, no storage growth, content correct.
        let b = client.create_blob(512).unwrap();
        let vb = client
            .write_chunks(b, Version(0), vec![(1, content.clone())])
            .unwrap();
        assert_eq!(client.store().total_stored_bytes(), stored);
        let got = client.read(b, vb, 128..256).unwrap();
        assert!(got.content_eq(&content));
        assert_eq!(client.context().stats().dedup_hits, 1);
    }

    #[test]
    fn metadata_nodes_shared_across_snapshots() {
        let (_f, client) = setup(4);
        // 8 chunks; snapshot twice touching one chunk each time.
        let (blob, v1) = client.upload(Payload::synth(10, 0, 1024)).unwrap();
        let nodes_v1 = client.store().total_metadata_nodes();
        client
            .write_chunks(blob, v1, vec![(0, Payload::synth(11, 0, 128))])
            .unwrap();
        let added = client.store().total_metadata_nodes() - nodes_v1;
        // span 8 -> depth 4 path (leaf + 2 inners + root).
        assert_eq!(added, 4, "path copy only: {added} nodes added");
    }

    /// Setup with explicit dedup *and* cluster-dedup settings plus two
    /// clients on distinct nodes (tests must not depend on the
    /// `BFF_DEDUP`/`BFF_CLUSTER_DEDUP` environment defaults — CI flips
    /// them).
    fn setup_cluster(cluster: bool) -> (Arc<LocalFabric>, Client, Client) {
        let fabric = LocalFabric::new(5);
        let compute: Vec<NodeId> = (0..4).map(NodeId).collect();
        let topo = BlobTopology::colocated(&compute, NodeId(4));
        let cfg = BlobConfig {
            chunk_size: 128,
            dedup: true,
            cluster_dedup: cluster,
            ..Default::default()
        };
        let store = BlobStore::new(cfg, topo, fabric.clone() as Arc<dyn Fabric>);
        let a = Client::new(Arc::clone(&store), NodeId(0));
        let b = Client::new(store, NodeId(1));
        (fabric, a, b)
    }

    #[test]
    fn cluster_dedup_commits_cross_node_content_by_reference() {
        let (_f, a, b) = setup_cluster(true);
        let content = Payload::synth(200, 0, 128);
        let (blob_a, va) = a.upload(Payload::synth(201, 0, 512)).unwrap();
        let _v2 = a
            .write_chunks(blob_a, va, vec![(0, content.clone())])
            .unwrap(); // id 5
        let stored = a.store().total_stored_bytes();
        assert_eq!(refcounts(&a, 5), vec![1]);

        // A *different node* commits the same bytes: its node index has
        // never seen them, but the cluster replica has — the commit
        // references chunk 5 instead of pushing a sixth chunk.
        let blob_b = b.create_blob(512).unwrap();
        let vb = b
            .write_chunks(blob_b, Version(0), vec![(3, content.clone())])
            .unwrap();
        assert_eq!(
            b.store().total_stored_bytes(),
            stored,
            "cross-node identical content must not grow provider storage"
        );
        assert_eq!(refcounts(&b, 5), vec![2]);
        assert_eq!(b.context().stats().dedup_hits, 1, "hit counted on node 1");
        let got = b.read(blob_b, vb, 3 * 128..4 * 128).unwrap();
        assert!(got.content_eq(&content));

        // Node-local-only dedup stores the second copy.
        let (_f2, a2, b2) = setup_cluster(false);
        let (blob_a2, va2) = a2.upload(Payload::synth(201, 0, 512)).unwrap();
        a2.write_chunks(blob_a2, va2, vec![(0, content.clone())])
            .unwrap();
        let stored_off = a2.store().total_stored_bytes();
        let blob_b2 = b2.create_blob(512).unwrap();
        b2.write_chunks(blob_b2, Version(0), vec![(3, content.clone())])
            .unwrap();
        assert_eq!(b2.store().total_stored_bytes(), stored_off + 128);
    }

    #[test]
    fn cluster_publishes_are_novelty_filtered() {
        let (f, a, b) = setup_cluster(true);
        let content = Payload::synth(210, 0, 128);
        let blob_a = a.create_blob(128).unwrap();
        a.write_chunks(blob_a, Version(0), vec![(0, content.clone())])
            .unwrap();
        let indexed = a.store().cluster_index().read().len();
        assert_eq!(indexed, 1, "the commit published its content key");
        // A second node committing the same content publishes nothing
        // new: same index size, and the only control traffic beyond the
        // commit itself is the validation/retain round.
        let msgs_before = f.stats().transfer_count();
        let blob_b = b.create_blob(128).unwrap();
        b.write_chunks(blob_b, Version(0), vec![(0, content.clone())])
            .unwrap();
        let _ = msgs_before;
        assert_eq!(
            b.store().cluster_index().read().len(),
            indexed,
            "an already-indexed key is not re-published"
        );
    }

    #[test]
    fn gc_reclaims_unique_chunks_and_preserves_survivors() {
        let (_f, a, _b) = setup_cluster(true);
        let image = Payload::synth(220, 0, 1024); // 8 chunks
        let (blob, v1) = a.upload(image.clone()).unwrap();
        let stored_v1 = a.store().total_stored_bytes();
        // v2 rewrites chunks 2 and 3 with fresh content.
        let v2 = a
            .write_chunks(
                blob,
                v1,
                vec![
                    (2, Payload::synth(221, 0, 128)),
                    (3, Payload::synth(222, 0, 128)),
                ],
            )
            .unwrap();
        assert_eq!(a.store().total_stored_bytes(), stored_v1 + 256);

        let report = a.delete_snapshot(blob, v2).unwrap();
        assert_eq!(report.deleted_versions, 1);
        assert_eq!(report.dead_leaves, 2, "only v2's shadowed leaves die");
        assert_eq!(report.freed_chunks, 2);
        assert_eq!(report.freed_bytes, 256);
        assert_eq!(
            a.store().total_stored_bytes(),
            stored_v1,
            "v2's unique bytes reclaimed exactly"
        );
        // The surviving snapshot is byte-identical; the deleted one is
        // gone for good.
        let got = a.read(blob, v1, 0..1024).unwrap();
        assert!(got.content_eq(&image));
        assert!(matches!(
            a.read(blob, v2, 0..1024),
            Err(BlobError::NoSuchVersion(_, _))
        ));
        assert!(matches!(
            a.delete_snapshot(blob, v2),
            Err(BlobError::NoSuchVersion(_, _))
        ));
        assert!(matches!(
            a.delete_snapshot(blob, Version(0)),
            Err(BlobError::BadInput(_))
        ));
    }

    #[test]
    fn gc_middle_of_chain_keeps_neighbors_byte_identical() {
        let (_f, a, _b) = setup_cluster(true);
        let (blob, v1) = a.upload(Payload::synth(230, 0, 512)).unwrap();
        let v2 = a
            .write_chunks(blob, v1, vec![(1, Payload::synth(231, 0, 128))])
            .unwrap();
        let v3 = a
            .write_chunks(blob, v2, vec![(1, Payload::synth(232, 0, 128))])
            .unwrap();
        let before_v1 = a.read(blob, v1, 0..512).unwrap();
        let before_v3 = a.read(blob, v3, 0..512).unwrap();
        let stored = a.store().total_stored_bytes();
        let report = a.delete_snapshot(blob, v2).unwrap();
        assert_eq!(report.freed_bytes, 128, "v2's private chunk only");
        assert_eq!(a.store().total_stored_bytes(), stored - 128);
        assert!(a.read(blob, v1, 0..512).unwrap().content_eq(&before_v1));
        assert!(a.read(blob, v3, 0..512).unwrap().content_eq(&before_v3));
    }

    #[test]
    fn gc_never_frees_chunks_shared_by_dedup_reference() {
        let (_f, a, b) = setup_cluster(true);
        let content = Payload::synth(240, 0, 128);
        let blob_a = a.create_blob(128).unwrap();
        let va = a
            .write_chunks(blob_a, Version(0), vec![(0, content.clone())])
            .unwrap();
        // Node 1 commits the same bytes by cluster reference (refcount 2).
        let blob_b = b.create_blob(128).unwrap();
        let vb = b
            .write_chunks(blob_b, Version(0), vec![(0, content.clone())])
            .unwrap();
        assert_eq!(refcounts(&a, 1), vec![2]);
        // Deleting one snapshot releases one reference; the bytes stay.
        let report = a.delete_snapshot(blob_a, va).unwrap();
        assert_eq!(report.released_refs, 1);
        assert_eq!(report.freed_chunks, 0, "the other lineage still refs it");
        assert_eq!(refcounts(&a, 1), vec![1]);
        assert!(b.read(blob_b, vb, 0..128).unwrap().content_eq(&content));
        // Deleting the second snapshot frees the chunk for real.
        let report = b.delete_snapshot(blob_b, vb).unwrap();
        assert_eq!((report.freed_chunks, report.freed_bytes), (1, 128));
        assert_eq!(refcounts(&a, 1), Vec::<u64>::new());
    }

    #[test]
    fn gc_respects_clone_aliases_across_blobs() {
        let (_f, a, _b) = setup_cluster(true);
        let image = Payload::synth(250, 0, 512);
        let (blob, v1) = a.upload(image.clone()).unwrap();
        let clone = a.clone_blob(blob, v1).unwrap();
        let stored = a.store().total_stored_bytes();
        // The clone's Version(1) *is* the source tree: deleting the
        // source version must free nothing while the alias lives.
        let report = a.delete_snapshot(blob, v1).unwrap();
        assert_eq!(report.dead_leaves, 0, "alias root keeps every leaf live");
        assert_eq!(a.store().total_stored_bytes(), stored);
        let got = a.read(clone, Version(1), 0..512).unwrap();
        assert!(got.content_eq(&image));
        // Once the alias goes too, the tree is unreachable and frees.
        let report = a.delete_snapshot(clone, Version(1)).unwrap();
        assert_eq!(report.freed_bytes, 512);
        assert_eq!(a.store().total_stored_bytes(), 0);
    }

    #[test]
    fn gc_delete_then_rewrite_identical_content_roundtrips() {
        // The delete→rewrite path: indexes may still carry entries for
        // reclaimed chunks; validation must catch them (retain fails),
        // push fresh bytes, and read back the identical content.
        for strong in [false, true] {
            let fabric = LocalFabric::new(5);
            let compute: Vec<NodeId> = (0..4).map(NodeId).collect();
            let topo = BlobTopology::colocated(&compute, NodeId(4));
            let cfg = BlobConfig {
                chunk_size: 128,
                dedup: true,
                cluster_dedup: true,
                strong_digest: strong,
                ..Default::default()
            };
            let store = BlobStore::new(cfg, topo, fabric as Arc<dyn Fabric>);
            let a = Client::new(Arc::clone(&store), NodeId(0));
            let b = Client::new(store, NodeId(1));
            let content = Payload::synth(260, 0, 128);
            let blob = a.create_blob(128).unwrap();
            let v = a
                .write_chunks(blob, Version(0), vec![(0, content.clone())])
                .unwrap();
            a.delete_snapshot(blob, v).unwrap();
            assert_eq!(a.store().total_stored_bytes(), 0);
            // Rewrite the same bytes from the *other* node (its caches
            // never saw the delete's origin): must store fresh and read
            // back byte-identical.
            let blob2 = b.create_blob(128).unwrap();
            let v2 = b
                .write_chunks(blob2, Version(0), vec![(0, content.clone())])
                .unwrap();
            assert_eq!(
                b.store().total_stored_bytes(),
                128,
                "strong={strong}: rewrite stores fresh bytes"
            );
            let got = b.read(blob2, v2, 0..128).unwrap();
            assert!(got.content_eq(&content), "strong={strong}");
        }
    }

    #[test]
    fn gc_evicts_freed_chunks_from_indexes_and_caches() {
        let (_f, a, b) = setup_cluster(true);
        let content = Payload::synth(270, 0, 128);
        let blob = a.create_blob(128).unwrap();
        let v = a
            .write_chunks(blob, Version(0), vec![(0, content.clone())])
            .unwrap();
        assert_eq!(a.store().cluster_index().read().len(), 1);
        assert!(a.context().digest_entries() > 0);
        let report = a.delete_snapshot(blob, v).unwrap();
        assert_eq!(report.freed_chunks, 1);
        assert_eq!(
            a.store().cluster_index().read().len(),
            0,
            "freed chunk evicted from the cluster index"
        );
        assert_eq!(
            a.context().digest_entries(),
            0,
            "freed chunk evicted from the node digest index"
        );
        let _ = b;
    }

    #[test]
    fn prefetch_confidence_skips_single_publisher_chunks() {
        let fabric = LocalFabric::new(5);
        let compute: Vec<NodeId> = (0..4).map(NodeId).collect();
        let topo = BlobTopology::colocated(&compute, NodeId(4));
        let cfg = BlobConfig {
            chunk_size: 128,
            prefetch: true,
            prefetch_min_publishers: 2, // explicit: tests must not drift
            ..Default::default()
        };
        let store = BlobStore::new(cfg, topo, fabric as Arc<dyn Fabric>);
        let a = Client::new(Arc::clone(&store), NodeId(0));
        let c = Client::new(Arc::clone(&store), NodeId(2));
        let (blob, v) = a.upload(Payload::synth(280, 0, 4096)).unwrap(); // 32 chunks
        let key = (blob, v);
        // One publisher so far: everything it reports is prefetchable.
        store
            .pattern_board()
            .merge(key, NodeId(0), &(0..16).collect::<Vec<u64>>());
        // A second cohort member confirms only the first half; the tail
        // 8..16 stays single-publisher (private divergence).
        store
            .pattern_board()
            .merge(key, NodeId(1), &(0..8).collect::<Vec<u64>>());
        let landed = c.prefetch_chunks(blob, v, 100).unwrap();
        assert_eq!(landed, 8, "only cohort-confirmed chunks are prefetched");
        let stats = c.context().prefetch_stats();
        assert_eq!(stats.prefetched_chunks, 8);
        // The unconfirmed tail was consumed, not deferred: nothing more
        // to do until new pattern data arrives.
        assert_eq!(c.prefetch_chunks(blob, v, 100).unwrap(), 0);
    }
}
