//! # bff-blobseer
//!
//! A from-scratch reimplementation of the BlobSeer versioning storage
//! service (Nicolae et al. [23, 24] in the paper), the substrate under the
//! paper's virtual file system:
//!
//! * **Striping** — blobs are split into fixed-size chunks distributed
//!   round-robin over provider nodes, giving parallel access under
//!   concurrency (§3.1.3).
//! * **Shadowing** — every write publishes a new snapshot version whose
//!   metadata segment tree shares all unmodified nodes with its base
//!   (Fig. 3); snapshots are first-class, immutable, totally ordered.
//! * **Cloning** — the paper's extension to BlobSeer: a clone is a new
//!   blob whose first version references the source tree, sharing all
//!   chunks and metadata (Fig. 3b) at O(1) cost.
//! * **Asynchronous writes** — providers acknowledge once the page cache
//!   absorbs the data (§5.3), with the write-back pressure modelled by
//!   the fabric.
//!
//! Architecture: a [`server::ServerState`] owns the passive server state
//! machines (version manager, provider manager, metadata shards, chunk
//! providers, pattern board, cluster index) behind a typed message
//! boundary ([`bff_wire`]); a [`service::BlobStore`] is the client-side
//! handle that reaches them through a [`bff_net::transport::Transport`]
//! — direct (zero-copy, in-process), codec (every message round-trips
//! encode/decode), or socket (framed TCP, optionally to other
//! processes). [`client::Client`] executes the protocol and charges
//! every message/disk access to a [`bff_net::Fabric`], so the identical
//! code runs in-process (real bytes) and on the simulator (virtual
//! time), and logical outcomes are transport-invariant.

pub mod api;
pub mod board;
pub mod client;
pub mod cluster;
pub mod context;
pub mod durable;
pub mod lockstat;
pub mod meta;
pub mod pmanager;
pub mod provider;
pub mod segtree;
pub mod server;
pub mod service;
pub mod vmanager;

pub use api::{
    BlobConfig, BlobConfigBuilder, BlobError, BlobId, BlobResult, BlobTopology, ChunkDesc, ChunkId,
    NodeKey, ReplicationMode, TransportMode, TreeNode, Version,
};
pub use board::{BoardService, PatternBoard};
pub use client::{Client, GcReport};
pub use cluster::ClusterIndex;
pub use context::{CacheStats, NodeContext, PrefetchStats};
pub use durable::{CommitPolicy, DurabilityCounters, DurabilityStats, GroupCommit, RecoveryReport};
pub use lockstat::LockContention;
pub use pmanager::Placement;
pub use provider::ProviderStore;
pub use server::ServerState;
pub use service::BlobStore;
