//! # bff-blobseer
//!
//! A from-scratch reimplementation of the BlobSeer versioning storage
//! service (Nicolae et al. [23, 24] in the paper), the substrate under the
//! paper's virtual file system:
//!
//! * **Striping** — blobs are split into fixed-size chunks distributed
//!   round-robin over provider nodes, giving parallel access under
//!   concurrency (§3.1.3).
//! * **Shadowing** — every write publishes a new snapshot version whose
//!   metadata segment tree shares all unmodified nodes with its base
//!   (Fig. 3); snapshots are first-class, immutable, totally ordered.
//! * **Cloning** — the paper's extension to BlobSeer: a clone is a new
//!   blob whose first version references the source tree, sharing all
//!   chunks and metadata (Fig. 3b) at O(1) cost.
//! * **Asynchronous writes** — providers acknowledge once the page cache
//!   absorbs the data (§5.3), with the write-back pressure modelled by
//!   the fabric.
//!
//! Architecture: a [`service::BlobStore`] holds passive server state
//! machines (version manager, provider manager, metadata shards, chunk
//! providers); [`client::Client`] executes the protocol and charges every
//! message/disk access to a [`bff_net::Fabric`], so the identical code
//! runs in-process (real bytes) and on the simulator (virtual time).

pub mod api;
pub mod board;
pub mod client;
pub mod cluster;
pub mod context;
pub mod lockstat;
pub mod meta;
pub mod pmanager;
pub mod provider;
pub mod segtree;
pub mod service;
pub mod vmanager;

pub use api::{
    BlobConfig, BlobError, BlobId, BlobResult, BlobTopology, ChunkDesc, ChunkId, NodeKey,
    ReplicationMode, TreeNode, Version,
};
pub use board::{BoardService, PatternBoard};
pub use client::{Client, GcReport};
pub use cluster::ClusterIndex;
pub use context::{CacheStats, NodeContext, PrefetchStats};
pub use lockstat::LockContention;
pub use pmanager::Placement;
pub use provider::ProviderStore;
pub use service::BlobStore;
