//! Versioned segment-tree algorithms (the paper's Fig. 3).
//!
//! The metadata of a blob snapshot is a binary tree over the chunk-index
//! space `0..span` (`span` = smallest power of two ≥ chunk count). Leaves
//! carry chunk descriptors; inner nodes carry child links that may point
//! into trees of *earlier snapshots or other blobs*. A write produces new
//! nodes only along the paths to modified leaves (shadowing); everything
//! else is shared. A clone shares the entire tree.
//!
//! The algorithms here are pure: they speak to storage through the
//! [`NodeIo`] trait, whose batched calls the client maps onto
//! metadata-server RPCs (one round per tree level, grouped by server, the
//! way BlobSeer parallelizes its distributed segment trees).

use crate::api::{BlobError, BlobResult, ChunkDesc, NodeKey, TreeNode};
use bff_data::FastMap;
use std::ops::Range;

/// Batched metadata node I/O.
pub trait NodeIo {
    /// Fetch the given nodes (one metadata round per call). Missing keys
    /// must yield `BlobError::MetadataMissing`.
    fn fetch(&mut self, keys: &[NodeKey]) -> BlobResult<Vec<TreeNode>>;
    /// Reserve `n` fresh node keys.
    fn reserve(&mut self, n: u64) -> BlobResult<Range<u64>>;
    /// Persist new nodes (one metadata round per call).
    fn store(&mut self, nodes: Vec<(NodeKey, TreeNode)>) -> BlobResult<()>;
}

/// Smallest power of two ≥ `chunks` (≥ 1).
pub fn span_for(chunks: u64) -> u64 {
    chunks.max(1).next_power_of_two()
}

/// Walk the tree of `root` and collect the leaf chunk descriptors for
/// chunk indices in `want` (clamped to `0..span`). Indices without a leaf
/// (NULL subtrees) are simply absent from the result — they read as zeros.
///
/// Fetches proceed level by level so that each level costs one metadata
/// round regardless of width.
pub fn collect_leaves(
    io: &mut dyn NodeIo,
    root: NodeKey,
    span: u64,
    want: &Range<u64>,
) -> BlobResult<Vec<(u64, ChunkDesc)>> {
    collect_leaves_multi(io, root, span, std::slice::from_ref(want))
}

/// Multi-range variant of [`collect_leaves`]: one breadth-first descent
/// for the *union* of `wants`, so a read plan of R disjoint runs costs at
/// most `tree depth` metadata rounds total instead of `R × depth`. This is
/// the single-descent planner behind the client's vectored `read_multi`.
///
/// Ordering contract: the result is sorted by chunk index with no
/// duplicates (even if `wants` overlap), and no explicit sort is needed —
/// the frontier is kept in index order (children pushed left before
/// right), and every leaf of a shadowed tree sits at the bottom level
/// (`build_new_tree` splits inner ranges down to single-chunk leaves), so
/// the final level emits leaves left-to-right. A test locks this contract.
pub fn collect_leaves_multi(
    io: &mut dyn NodeIo,
    root: NodeKey,
    span: u64,
    wants: &[Range<u64>],
) -> BlobResult<Vec<(u64, ChunkDesc)>> {
    let mut out = Vec::new();
    // Normalize to sorted, disjoint, non-empty ranges.
    let mut wants: Vec<Range<u64>> = wants.iter().filter(|w| w.start < w.end).cloned().collect();
    wants.sort_by_key(|w| w.start);
    wants.dedup_by(|next, prev| {
        if next.start <= prev.end {
            prev.end = prev.end.max(next.end);
            true
        } else {
            false
        }
    });
    if root.is_null() || wants.is_empty() {
        return Ok(out);
    }
    // Does `range` intersect the want union? `wants` is sorted+disjoint,
    // so only the predecessor-by-start and successor runs can overlap.
    let intersects = |range: &Range<u64>| -> bool {
        let i = wants.partition_point(|w| w.start < range.end);
        i > 0 && wants[i - 1].end > range.start
    };
    // Frontier of (key, node_range), maintained in index order.
    let mut frontier: Vec<(NodeKey, Range<u64>)> = vec![(root, 0..span)];
    while !frontier.is_empty() {
        let keys: Vec<NodeKey> = frontier.iter().map(|(k, _)| *k).collect();
        let nodes = io.fetch(&keys)?;
        let mut next = Vec::new();
        for ((_key, range), node) in frontier.into_iter().zip(nodes) {
            match node {
                TreeNode::Leaf { chunk } => {
                    debug_assert_eq!(range.end - range.start, 1, "leaf must cover one chunk");
                    if intersects(&range) {
                        debug_assert!(
                            out.last().is_none_or(|(i, _)| *i < range.start),
                            "frontier order must yield sorted leaves"
                        );
                        out.push((range.start, chunk));
                    }
                }
                TreeNode::Inner { left, right } => {
                    let mid = range.start + (range.end - range.start) / 2;
                    if !left.is_null() && intersects(&(range.start..mid)) {
                        next.push((left, range.start..mid));
                    }
                    if !right.is_null() && intersects(&(mid..range.end)) {
                        next.push((right, mid..range.end));
                    }
                }
            }
        }
        frontier = next;
    }
    Ok(out)
}

/// Walk the whole tree of `root` and collect every leaf with its
/// metadata **node key**: `(chunk index, leaf key, descriptor)`, in
/// index order, one metadata round per level like
/// [`collect_leaves_multi`].
///
/// This is the garbage collector's view of a snapshot. Chunk-level
/// identity cannot drive deletion — two snapshots can reference one
/// chunk either through a *shared* leaf node (shadowing/CLONE: one
/// provider-side reference between them) or through *distinct* leaves
/// (dedup by reference: one reference each) — but leaf-node identity
/// can: every leaf node holds exactly one reference per replica in its
/// descriptor, so a leaf reachable only from deleted roots releases
/// exactly its own references and never a survivor's.
pub fn collect_leaf_keys(
    io: &mut dyn NodeIo,
    root: NodeKey,
    span: u64,
) -> BlobResult<Vec<(u64, NodeKey, ChunkDesc)>> {
    let mut out = Vec::new();
    if root.is_null() {
        return Ok(out);
    }
    let mut frontier: Vec<(NodeKey, Range<u64>)> = vec![(root, 0..span)];
    while !frontier.is_empty() {
        let keys: Vec<NodeKey> = frontier.iter().map(|(k, _)| *k).collect();
        let nodes = io.fetch(&keys)?;
        let mut next = Vec::new();
        for ((key, range), node) in frontier.into_iter().zip(nodes) {
            match node {
                TreeNode::Leaf { chunk } => {
                    debug_assert_eq!(range.end - range.start, 1, "leaf must cover one chunk");
                    out.push((range.start, key, chunk));
                }
                TreeNode::Inner { left, right } => {
                    let mid = range.start + (range.end - range.start) / 2;
                    if !left.is_null() {
                        next.push((left, range.start..mid));
                    }
                    if !right.is_null() {
                        next.push((right, mid..range.end));
                    }
                }
            }
        }
        frontier = next;
    }
    Ok(out)
}

/// Build the tree for a new snapshot that applies `updates` (chunk index →
/// descriptor) on top of the tree rooted at `old_root`. Returns the new
/// root. Only nodes on paths to updated leaves are created; all other
/// subtrees are shared with the old tree by reference (shadowing).
pub fn build_new_tree(
    io: &mut dyn NodeIo,
    old_root: NodeKey,
    span: u64,
    updates: &FastMap<u64, ChunkDesc>,
) -> BlobResult<NodeKey> {
    if updates.is_empty() {
        return Ok(old_root);
    }
    debug_assert!(updates.keys().all(|&i| i < span), "update beyond span");

    // Phase 1: fetch the old nodes on paths to updated leaves, level by
    // level, into a local cache.
    let mut cache: FastMap<NodeKey, TreeNode> = FastMap::default();
    if !old_root.is_null() {
        let mut frontier: Vec<(NodeKey, Range<u64>)> = vec![(old_root, 0..span)];
        while !frontier.is_empty() {
            let keys: Vec<NodeKey> = frontier.iter().map(|(k, _)| *k).collect();
            let nodes = io.fetch(&keys)?;
            let mut next = Vec::new();
            for ((key, range), node) in frontier.into_iter().zip(nodes) {
                cache.insert(key, node.clone());
                if let TreeNode::Inner { left, right } = node {
                    let mid = range.start + (range.end - range.start) / 2;
                    if !left.is_null() && touches(updates, &(range.start..mid)) {
                        next.push((left, range.start..mid));
                    }
                    if !right.is_null() && touches(updates, &(mid..range.end)) {
                        next.push((right, mid..range.end));
                    }
                }
            }
            frontier = next;
        }
    }

    // Phase 2: count the nodes we will create so one reservation covers
    // them, then build bottom-up locally.
    let new_count = count_new_nodes(&cache, old_root, 0..span, updates);
    let mut keys = io.reserve(new_count)?;
    let mut created: Vec<(NodeKey, TreeNode)> = Vec::with_capacity(new_count as usize);
    let root = build_rec(&cache, old_root, 0..span, updates, &mut keys, &mut created)?;
    debug_assert_eq!(created.len() as u64, new_count);

    // Phase 3: persist the new nodes, then hand back the root.
    io.store(created)?;
    Ok(root)
}

fn touches(updates: &FastMap<u64, ChunkDesc>, range: &Range<u64>) -> bool {
    // Updates are sparse relative to spans only for huge trees; for the
    // commit sizes in play a direct scan of the smaller side is fine.
    if (range.end - range.start) < updates.len() as u64 {
        (range.start..range.end).any(|i| updates.contains_key(&i))
    } else {
        updates.keys().any(|i| range.contains(i))
    }
}

fn count_new_nodes(
    cache: &FastMap<NodeKey, TreeNode>,
    old: NodeKey,
    range: Range<u64>,
    updates: &FastMap<u64, ChunkDesc>,
) -> u64 {
    if !touches(updates, &range) {
        return 0;
    }
    if range.end - range.start == 1 {
        return 1;
    }
    let mid = range.start + (range.end - range.start) / 2;
    let (ol, or) = match (!old.is_null()).then(|| cache.get(&old)).flatten() {
        Some(TreeNode::Inner { left, right }) => (*left, *right),
        _ => (NodeKey::NULL, NodeKey::NULL),
    };
    1 + count_new_nodes(cache, ol, range.start..mid, updates)
        + count_new_nodes(cache, or, mid..range.end, updates)
}

fn build_rec(
    cache: &FastMap<NodeKey, TreeNode>,
    old: NodeKey,
    range: Range<u64>,
    updates: &FastMap<u64, ChunkDesc>,
    keys: &mut Range<u64>,
    created: &mut Vec<(NodeKey, TreeNode)>,
) -> BlobResult<NodeKey> {
    if !touches(updates, &range) {
        // Untouched subtree: share the old one (possibly NULL).
        return Ok(old);
    }
    let key = NodeKey(keys.next().expect("key reservation exhausted"));
    if range.end - range.start == 1 {
        let chunk = updates
            .get(&range.start)
            .expect("touched leaf has update")
            .clone();
        created.push((key, TreeNode::Leaf { chunk }));
        return Ok(key);
    }
    let mid = range.start + (range.end - range.start) / 2;
    let (ol, or) = match (!old.is_null()).then(|| cache.get(&old)).flatten() {
        Some(TreeNode::Inner { left, right }) => (*left, *right),
        Some(TreeNode::Leaf { .. }) => {
            return Err(BlobError::MetadataMissing(old));
        }
        None if !old.is_null() => return Err(BlobError::MetadataMissing(old)),
        None => (NodeKey::NULL, NodeKey::NULL),
    };
    let left = build_rec(cache, ol, range.start..mid, updates, keys, created)?;
    let right = build_rec(cache, or, mid..range.end, updates, keys, created)?;
    created.push((key, TreeNode::Inner { left, right }));
    Ok(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ChunkId;
    use bff_net::NodeId;

    /// In-memory NodeIo that also counts rounds (for batching assertions).
    #[derive(Default)]
    struct MemIo {
        nodes: FastMap<NodeKey, TreeNode>,
        next: u64,
        fetch_rounds: usize,
        stored: usize,
    }

    impl MemIo {
        fn new() -> Self {
            Self {
                next: 1,
                ..Default::default()
            }
        }
    }

    impl NodeIo for MemIo {
        fn fetch(&mut self, keys: &[NodeKey]) -> BlobResult<Vec<TreeNode>> {
            self.fetch_rounds += 1;
            keys.iter()
                .map(|k| {
                    self.nodes
                        .get(k)
                        .cloned()
                        .ok_or(BlobError::MetadataMissing(*k))
                })
                .collect()
        }
        fn reserve(&mut self, n: u64) -> BlobResult<Range<u64>> {
            let start = self.next;
            self.next += n;
            Ok(start..self.next)
        }
        fn store(&mut self, nodes: Vec<(NodeKey, TreeNode)>) -> BlobResult<()> {
            self.stored += nodes.len();
            for (k, n) in nodes {
                assert!(self.nodes.insert(k, n).is_none(), "node keys are immutable");
            }
            Ok(())
        }
    }

    fn desc(i: u64) -> ChunkDesc {
        ChunkDesc {
            id: ChunkId(1000 + i),
            replicas: [NodeId((i % 4) as u32)].into(),
        }
    }

    fn updates(idx: &[u64]) -> FastMap<u64, ChunkDesc> {
        idx.iter().map(|&i| (i, desc(i))).collect()
    }

    #[test]
    fn span_is_next_pow2() {
        assert_eq!(span_for(0), 1);
        assert_eq!(span_for(1), 1);
        assert_eq!(span_for(5), 8);
        assert_eq!(span_for(8), 8);
        assert_eq!(span_for(8192), 8192);
    }

    #[test]
    fn empty_tree_reads_empty() {
        let mut io = MemIo::new();
        let leaves = collect_leaves(&mut io, NodeKey::NULL, 8, &(0..8)).unwrap();
        assert!(leaves.is_empty());
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut io = MemIo::new();
        let root = build_new_tree(&mut io, NodeKey::NULL, 8, &updates(&[0, 3, 7])).unwrap();
        let leaves = collect_leaves(&mut io, root, 8, &(0..8)).unwrap();
        let idx: Vec<u64> = leaves.iter().map(|(i, _)| *i).collect();
        assert_eq!(idx, vec![0, 3, 7]);
        assert_eq!(leaves[1].1, desc(3));
        // Partial range.
        let leaves = collect_leaves(&mut io, root, 8, &(1..4)).unwrap();
        assert_eq!(leaves.len(), 1);
        assert_eq!(leaves[0].0, 3);
    }

    #[test]
    fn shadowing_shares_unmodified_subtrees() {
        // Fig. 3(c): writing chunk C4' to a 4-chunk blob creates exactly
        // the path to leaf 3: leaf + 1 inner + root = 3 nodes; the (0,2)
        // subtree is shared.
        let mut io = MemIo::new();
        let v1 = build_new_tree(&mut io, NodeKey::NULL, 4, &updates(&[0, 1, 2, 3])).unwrap();
        let before = io.stored;
        assert_eq!(before, 4 + 2 + 1, "full tree of span 4");
        let v2 = build_new_tree(&mut io, v1, 4, &updates(&[3])).unwrap();
        assert_eq!(io.stored - before, 3, "path copy only");
        // v2 sees the update; v1 is untouched.
        let l2 = collect_leaves(&mut io, v2, 4, &(0..4)).unwrap();
        assert_eq!(l2.len(), 4);
        let l1 = collect_leaves(&mut io, v1, 4, &(3..4)).unwrap();
        assert_eq!(l1[0].1, desc(3));
        // And the shared left subtree is literally the same node keys:
        let (TreeNode::Inner { left: left1, .. }, TreeNode::Inner { left: left2, .. }) =
            (io.nodes[&v1].clone(), io.nodes[&v2].clone())
        else {
            panic!("roots must be inner nodes")
        };
        assert_eq!(left1, left2, "unmodified subtree shared between snapshots");
    }

    #[test]
    fn old_versions_are_immutable() {
        let mut io = MemIo::new();
        let v1 = build_new_tree(&mut io, NodeKey::NULL, 8, &updates(&[2])).unwrap();
        let snapshot_before: FastMap<NodeKey, TreeNode> = io.nodes.clone();
        let _v2 = build_new_tree(&mut io, v1, 8, &updates(&[2, 5])).unwrap();
        // Every node that existed before still exists, unmodified.
        for (k, n) in snapshot_before {
            assert_eq!(io.nodes.get(&k), Some(&n));
        }
    }

    #[test]
    fn cloning_by_sharing_root_then_diverging() {
        // CLONE is metadata-free in this representation: blob B's v1 root
        // *is* blob A's root. Writing to B must not disturb A.
        let mut io = MemIo::new();
        let a_root = build_new_tree(&mut io, NodeKey::NULL, 4, &updates(&[0, 1, 2, 3])).unwrap();
        let b_root = a_root; // CLONE
        let mut up = FastMap::default();
        up.insert(
            1u64,
            ChunkDesc {
                id: ChunkId(777),
                replicas: [NodeId(9)].into(),
            },
        );
        let b2 = build_new_tree(&mut io, b_root, 4, &up).unwrap();
        let a_leaves = collect_leaves(&mut io, a_root, 4, &(0..4)).unwrap();
        assert_eq!(
            a_leaves[1].1,
            desc(1),
            "origin unchanged after clone diverges"
        );
        let b_leaves = collect_leaves(&mut io, b2, 4, &(0..4)).unwrap();
        assert_eq!(b_leaves[1].1.id, ChunkId(777));
        assert_eq!(b_leaves[0].1, desc(0), "clone shares original content");
    }

    #[test]
    fn fetch_rounds_are_per_level() {
        let mut io = MemIo::new();
        let all: Vec<u64> = (0..16).collect();
        let root = build_new_tree(&mut io, NodeKey::NULL, 16, &updates(&all)).unwrap();
        io.fetch_rounds = 0;
        let _ = collect_leaves(&mut io, root, 16, &(0..16)).unwrap();
        // Depth of a span-16 tree is log2(16)+1 = 5 levels.
        assert_eq!(io.fetch_rounds, 5);
    }

    #[test]
    fn multi_range_descent_costs_one_round_per_level() {
        // A plan of R disjoint runs must cost at most tree-depth rounds
        // total, not R × depth: the union descends in one BFS.
        let span = 64u64;
        let mut io = MemIo::new();
        let all: Vec<u64> = (0..span).collect();
        let root = build_new_tree(&mut io, NodeKey::NULL, span, &updates(&all)).unwrap();
        let runs: Vec<Range<u64>> = vec![2..5, 9..10, 17..23, 40..41, 60..64];
        io.fetch_rounds = 0;
        let leaves = collect_leaves_multi(&mut io, root, span, &runs).unwrap();
        let depth = span.ilog2() as usize + 1;
        assert!(
            io.fetch_rounds <= depth,
            "{} rounds for {} runs exceeds depth {}",
            io.fetch_rounds,
            runs.len(),
            depth
        );
        // Same leaves as per-run descents, in index order.
        let mut expect = Vec::new();
        for r in &runs {
            expect.extend(collect_leaves(&mut io, root, span, r).unwrap());
        }
        assert_eq!(leaves, expect);
    }

    #[test]
    fn multi_range_overlaps_dedup_and_clamp() {
        let mut io = MemIo::new();
        let root = build_new_tree(&mut io, NodeKey::NULL, 8, &updates(&[0, 3, 5, 7])).unwrap();
        // Overlapping + adjacent + empty input ranges collapse cleanly.
        let leaves = collect_leaves_multi(&mut io, root, 8, &[4..6, 2..5, 6..6, 5..8]).unwrap();
        let idx: Vec<u64> = leaves.iter().map(|(i, _)| *i).collect();
        assert_eq!(idx, vec![3, 5, 7]);
        // Empty plan costs nothing.
        io.fetch_rounds = 0;
        assert!(collect_leaves_multi(&mut io, root, 8, &[])
            .unwrap()
            .is_empty());
        assert!(
            collect_leaves_multi(&mut io, root, 8, std::slice::from_ref(&(3..3)))
                .unwrap()
                .is_empty()
        );
        assert_eq!(io.fetch_rounds, 0);
    }

    #[test]
    fn leaves_emerge_in_index_order_without_sorting() {
        // The ordering contract `collect_leaves_multi` documents: BFS with
        // left-before-right children yields sorted leaves because every
        // leaf sits at the bottom level. Locked here so a future layout
        // change (e.g. variable-depth leaves) must revisit the contract.
        let mut io = MemIo::new();
        let sparse: Vec<u64> = vec![1, 2, 6, 9, 300, 301, 500, 1023];
        let root = build_new_tree(&mut io, NodeKey::NULL, 1024, &updates(&sparse)).unwrap();
        let leaves = collect_leaves(&mut io, root, 1024, &(0..1024)).unwrap();
        let idx: Vec<u64> = leaves.iter().map(|(i, _)| *i).collect();
        assert_eq!(idx, sparse, "leaves must arrive sorted and complete");
    }

    #[test]
    fn leaf_keys_expose_sharing_between_snapshots() {
        // Two snapshots sharing all but one leaf: the walks agree on the
        // shared leaves' node keys and differ exactly at the updated
        // index — the property the snapshot GC's reachability diff
        // relies on.
        let mut io = MemIo::new();
        let v1 = build_new_tree(&mut io, NodeKey::NULL, 8, &updates(&[0, 3, 7])).unwrap();
        let v2 = build_new_tree(&mut io, v1, 8, &updates(&[3])).unwrap();
        let l1 = collect_leaf_keys(&mut io, v1, 8).unwrap();
        let l2 = collect_leaf_keys(&mut io, v2, 8).unwrap();
        assert_eq!(l1.len(), 3);
        assert_eq!(l2.len(), 3);
        let key_at = |ls: &[(u64, NodeKey, ChunkDesc)], i: u64| {
            ls.iter().find(|(idx, _, _)| *idx == i).unwrap().1
        };
        assert_eq!(key_at(&l1, 0), key_at(&l2, 0), "untouched leaf shared");
        assert_eq!(key_at(&l1, 7), key_at(&l2, 7), "untouched leaf shared");
        assert_ne!(key_at(&l1, 3), key_at(&l2, 3), "updated leaf shadowed");
        // Index order and descriptors match the plain leaf walk.
        let plain = collect_leaves(&mut io, v2, 8, &(0..8)).unwrap();
        let flat: Vec<(u64, ChunkDesc)> = l2.into_iter().map(|(i, _, d)| (i, d)).collect();
        assert_eq!(flat, plain);
        // A NULL tree has no leaves.
        assert!(collect_leaf_keys(&mut io, NodeKey::NULL, 8)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn no_update_returns_old_root() {
        let mut io = MemIo::new();
        let root = build_new_tree(&mut io, NodeKey::NULL, 4, &updates(&[1])).unwrap();
        let same = build_new_tree(&mut io, root, 4, &FastMap::default()).unwrap();
        assert_eq!(root, same);
    }

    #[test]
    fn single_chunk_blob() {
        let mut io = MemIo::new();
        let root = build_new_tree(&mut io, NodeKey::NULL, 1, &updates(&[0])).unwrap();
        let leaves = collect_leaves(&mut io, root, 1, &(0..1)).unwrap();
        assert_eq!(leaves.len(), 1);
        assert!(matches!(io.nodes[&root], TreeNode::Leaf { .. }));
    }

    #[test]
    fn sparse_tree_reads_only_written() {
        let mut io = MemIo::new();
        let root = build_new_tree(&mut io, NodeKey::NULL, 1024, &updates(&[1000])).unwrap();
        let leaves = collect_leaves(&mut io, root, 1024, &(0..1024)).unwrap();
        assert_eq!(leaves.len(), 1);
        assert_eq!(leaves[0].0, 1000);
        // A sparse write creates only the path: depth 11 nodes.
        assert_eq!(io.stored, 11);
    }
}
