//! Durability: the log-structured chunk store behind disk-backed
//! providers and the mutation journal behind the manager roles.
//!
//! Everything here is built on `bff_data::RecordLog` (checksummed
//! append-only records with torn-tail truncation) and the `bff_wire`
//! codec (the journal reuses [`VmReq`]'s wire form, so the journal
//! format *is* the protocol format).
//!
//! ## Chunk segments ([`SegmentStore`])
//!
//! Chunk data lives in numbered segment files `seg-N.log` under the
//! provider's directory. The active (highest-numbered) segment takes
//! appends; once it passes `segment_bytes` it is sealed and a new one
//! starts. Two record kinds exist in segments:
//!
//! - `Put { id, data }` — replay upserts the per-chunk index;
//! - `Free { id }` — a GC tombstone; replay removes the id.
//!
//! A sealed segment whose live fraction falls below ½ is compacted:
//! its still-live `Put` records are re-appended to the active segment,
//! its tombstones for ids absent from the index are carried forward
//! (they may shadow `Put`s in *other* segments), and the file is
//! deleted.
//!
//! ## Refcount log (`refs.log`)
//!
//! Dedup refcount deltas live in a *separate* log, not in segments:
//! compaction drops whole segment files, and a delta for a chunk whose
//! data lives elsewhere must survive that. The log carries
//! `Retain`/`Release` deltas against an implicit base count of 1 (a
//! put *is* the first reference) and is periodically rewritten as one
//! absolute `Snapshot` record (tmp file + fsync + atomic rename).
//! Lost un-synced `Release` records are a bounded leak, never
//! corruption; `Free` tombstones in the data log keep a rewritten
//! refs.log from resurrecting freed chunks.
//!
//! ## Manager journal ([`Journal`])
//!
//! One `journal.log` per server process records every version-manager
//! mutation (`VmOp`), every metadata-node write (`MetaNodes`), and
//! high-water marks for the two id allocators (`KeyMark`/`ChunkMark`).
//! Marks reserve [`MARK_STRIDE`] ids ahead, so the fsync cost of
//! making an allocation durable is paid once per stride, and a crash
//! can only *skip* ids, never reuse them — reuse would violate the
//! write-once metadata and chunk-id-never-different-data invariants.
//!
//! Two processes must never share a data directory: each one truncates
//! and appends its logs as the exclusive writer.

use crate::api::{BlobConfig, ChunkId, NodeKey, TreeNode};
use bff_data::{FastMap, Payload, RecordLog};
use bff_wire::codec::{put_varint, Reader, Wire};
use bff_wire::msg::VmReq;
use bff_wire::WireError;
// The vendored `parking_lot` shim has no Condvar; the coordinator's
// park/wake state uses `std::sync` directly (by-value guard API).
use std::collections::BTreeMap;
use std::fs::File;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::{Condvar, Mutex as SyncMutex};
use std::time::{Duration, Instant};

/// Ids reserved ahead of each durable allocator mark: one fsync buys
/// this many `ReserveKeys`/`Allocate` acks.
pub const MARK_STRIDE: u64 = 65_536;

/// Seal the active segment once it holds this many bytes.
pub const DEFAULT_SEGMENT_BYTES: u64 = 64 << 20;

/// Rewrite `refs.log` as one absolute snapshot after this many delta
/// records.
const REFS_REWRITE_OPS: u64 = 8_192;

/// Compact a sealed segment when its live fraction drops below this.
const COMPACT_LIVE_FRAC: f64 = 0.5;

// ---------------------------------------------------------------------
// Record types.
// ---------------------------------------------------------------------

/// A record in a chunk segment file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChunkRecord {
    /// Chunk bytes; replay upserts the index.
    Put { id: ChunkId, data: Payload },
    /// GC tombstone; replay removes the id from the index.
    Free { id: ChunkId },
}

impl Wire for ChunkRecord {
    fn enc(&self, out: &mut Vec<u8>) {
        match self {
            ChunkRecord::Put { id, data } => {
                out.push(0);
                id.enc(out);
                data.enc(out);
            }
            ChunkRecord::Free { id } => {
                out.push(1);
                id.enc(out);
            }
        }
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(ChunkRecord::Put {
                id: ChunkId::dec(r)?,
                data: Payload::dec(r)?,
            }),
            1 => Ok(ChunkRecord::Free {
                id: ChunkId::dec(r)?,
            }),
            t => Err(WireError::BadTag("chunk record", t)),
        }
    }
}

/// A record in the refcount log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefRecord {
    /// Add `n` references to `id`.
    Retain { id: ChunkId, n: u64 },
    /// Drop `n` references from `id`.
    Release { id: ChunkId, n: u64 },
    /// Absolute counts replacing all earlier records. Only counts ≠ 1
    /// are listed — every indexed chunk has an implicit count of 1.
    Snapshot(Vec<(ChunkId, u64)>),
}

impl Wire for RefRecord {
    fn enc(&self, out: &mut Vec<u8>) {
        match self {
            RefRecord::Retain { id, n } => {
                out.push(0);
                id.enc(out);
                put_varint(out, *n);
            }
            RefRecord::Release { id, n } => {
                out.push(1);
                id.enc(out);
                put_varint(out, *n);
            }
            RefRecord::Snapshot(counts) => {
                out.push(2);
                counts.enc(out);
            }
        }
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(RefRecord::Retain {
                id: ChunkId::dec(r)?,
                n: r.varint()?,
            }),
            1 => Ok(RefRecord::Release {
                id: ChunkId::dec(r)?,
                n: r.varint()?,
            }),
            2 => Ok(RefRecord::Snapshot(Vec::dec(r)?)),
            t => Err(WireError::BadTag("ref record", t)),
        }
    }
}

/// A record in the manager journal.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A successful version-manager mutation, in protocol wire form.
    VmOp(VmReq),
    /// Metadata nodes written to shard `shard`.
    MetaNodes {
        shard: u32,
        nodes: Vec<(NodeKey, TreeNode)>,
    },
    /// Durable high-water mark of the metadata node-key allocator.
    KeyMark(u64),
    /// Durable high-water mark of the chunk-id allocator.
    ChunkMark(u64),
}

impl Wire for JournalRecord {
    fn enc(&self, out: &mut Vec<u8>) {
        match self {
            JournalRecord::VmOp(op) => {
                out.push(0);
                op.enc(out);
            }
            JournalRecord::MetaNodes { shard, nodes } => {
                out.push(1);
                shard.enc(out);
                nodes.enc(out);
            }
            JournalRecord::KeyMark(k) => {
                out.push(2);
                put_varint(out, *k);
            }
            JournalRecord::ChunkMark(c) => {
                out.push(3);
                put_varint(out, *c);
            }
        }
    }
    fn dec(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(JournalRecord::VmOp(VmReq::dec(r)?)),
            1 => Ok(JournalRecord::MetaNodes {
                shard: u32::dec(r)?,
                nodes: Vec::dec(r)?,
            }),
            2 => Ok(JournalRecord::KeyMark(r.varint()?)),
            3 => Ok(JournalRecord::ChunkMark(r.varint()?)),
            t => Err(WireError::BadTag("journal record", t)),
        }
    }
}

// ---------------------------------------------------------------------
// Group commit.
// ---------------------------------------------------------------------

/// Durability counters shared by every commit coordinator of one
/// deployment: how many fsync barriers were issued, how many acks they
/// covered, and the worst ticket wait. Lock-free to read — the
/// observability behind the BENCH_9 `acks_per_fsync` gate.
#[derive(Debug, Default)]
pub struct DurabilityStats {
    fsyncs: AtomicU64,
    acks: AtomicU64,
    max_wait_ns: AtomicU64,
}

impl DurabilityStats {
    /// Record one completed fsync barrier (one `sync_data` round, however
    /// many files it covered).
    pub fn note_fsync(&self) {
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one acknowledged operation whose durability barrier took
    /// `waited` from barrier entry to ack.
    pub fn note_ack(&self, waited: Duration) {
        self.acks.fetch_add(1, Ordering::Relaxed);
        self.max_wait_ns
            .fetch_max(waited.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Point-in-time copy of the counters.
    pub fn snapshot(&self) -> DurabilityCounters {
        let fsyncs = self.fsyncs.load(Ordering::Relaxed);
        let acks = self.acks.load(Ordering::Relaxed);
        DurabilityCounters {
            fsyncs,
            acks,
            acks_per_fsync: acks as f64 / fsyncs.max(1) as f64,
            max_wait_us: self.max_wait_ns.load(Ordering::Relaxed) / 1_000,
        }
    }
}

/// A [`DurabilityStats`] snapshot (plain values, for metrics surfaces).
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct DurabilityCounters {
    /// Fsync barriers issued (one per `sync_data` round, not per file).
    pub fsyncs: u64,
    /// Acknowledged operations those barriers covered.
    pub acks: u64,
    /// `acks / fsyncs` — above 1.0 means group commit is amortizing.
    pub acks_per_fsync: f64,
    /// Longest wall-clock wait from barrier entry to ack, microseconds.
    pub max_wait_us: u64,
}

/// How a durable log's commit-ack barrier is crossed: the group-commit
/// window plus the shared counters. One policy per deployment; its
/// `stats` arc is shared by every coordinator built from it.
#[derive(Debug, Clone)]
pub struct CommitPolicy {
    /// Batch concurrent acks behind one fsync (leader/follower) instead
    /// of one fsync per ack.
    pub group_commit: bool,
    /// Upper bound on a follower's wait for a leader's sync; a lone
    /// writer never waits longer than this before taking over.
    pub flush_interval: Duration,
    /// Deployment-wide durability counters.
    pub stats: Arc<DurabilityStats>,
}

impl CommitPolicy {
    /// The policy a [`BlobConfig`] asks for
    /// (`group_commit`/`flush_interval_us` knobs).
    pub fn from_config(cfg: &BlobConfig) -> Self {
        CommitPolicy {
            group_commit: cfg.group_commit,
            flush_interval: Duration::from_micros(cfg.flush_interval_us.max(1)),
            stats: Arc::new(DurabilityStats::default()),
        }
    }

    /// A coordinator for one durable log under this policy, or `None`
    /// when the per-ack baseline discipline is configured.
    pub fn coordinator(&self) -> Option<Arc<GroupCommit>> {
        self.group_commit.then(|| {
            Arc::new(GroupCommit::new(
                self.flush_interval,
                Arc::clone(&self.stats),
            ))
        })
    }
}

#[derive(Debug, Default)]
struct GcState {
    /// Tickets issued (monotonic append high-water mark).
    appended: u64,
    /// Highest ticket covered by a *completed* sync.
    synced: u64,
    /// Whether a leader's sync is in flight.
    leader: bool,
}

/// The group-commit coordinator of one durable log (leader/follower
/// fsync batching).
///
/// Appenders take a [`GroupCommit::ticket`] *after* their append is in
/// the log (typically still under the log's lock), release the lock,
/// then park in [`GroupCommit::commit`]. The first committer to find no
/// leader becomes one: it captures the ticket high-water mark, runs the
/// caller's sync closure (which fsyncs every append at-or-before that
/// mark) *outside* the coordinator lock, then wakes the whole cohort.
/// Followers whose ticket the mark covers ack without ever touching the
/// disk — N concurrent acks cost ~1 fsync. Natural batching: appends
/// that arrive during a leader's fsync pile up behind the next barrier.
/// A follower waits at most `window` before re-checking (and, with the
/// leader gone, taking over), so a lone writer's ack is never delayed
/// past the window by a vanished cohort.
#[derive(Debug)]
pub struct GroupCommit {
    state: SyncMutex<GcState>,
    cv: Condvar,
    window: Duration,
    stats: Arc<DurabilityStats>,
}

impl GroupCommit {
    /// A coordinator with the given lone-writer wait bound.
    pub fn new(window: Duration, stats: Arc<DurabilityStats>) -> Self {
        GroupCommit {
            state: SyncMutex::new(GcState::default()),
            cv: Condvar::new(),
            window,
            stats,
        }
    }

    /// Issue a sync ticket. Must be called *after* the append it covers
    /// is in the log (the log's own lock serializes append-then-ticket
    /// against a leader capturing the high-water mark).
    pub fn ticket(&self) -> u64 {
        let mut st = self.state.lock().expect("group-commit state");
        st.appended += 1;
        st.appended
    }

    /// Park until a sync covering `ticket` has completed, becoming the
    /// leader that issues it if nobody else is. `sync` must make every
    /// append at-or-before the current ticket high-water mark durable;
    /// it runs with no coordinator lock held, so appenders keep
    /// interleaving while the disk works. Fsync-before-ack: this returns
    /// only after such a sync *completed*.
    pub fn commit(&self, ticket: u64, mut sync: impl FnMut() -> io::Result<()>) -> io::Result<()> {
        let started = Instant::now();
        let mut st = self.state.lock().expect("group-commit state");
        loop {
            if st.synced >= ticket {
                drop(st);
                self.stats.note_ack(started.elapsed());
                return Ok(());
            }
            if !st.leader {
                st.leader = true;
                let target = st.appended;
                drop(st);
                let res = sync();
                st = self.state.lock().expect("group-commit state");
                st.leader = false;
                if res.is_ok() {
                    // target ≥ ticket: our ticket predates the capture.
                    st.synced = st.synced.max(target);
                    self.stats.note_fsync();
                }
                self.cv.notify_all();
                res?;
            } else {
                // Bounded park: on timeout, loop around and (with the
                // leader gone) take over rather than waiting forever.
                st = self
                    .cv
                    .wait_timeout(st, self.window)
                    .expect("group-commit state")
                    .0;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Segment store.
// ---------------------------------------------------------------------

/// Where a chunk's `Put` record lives.
#[derive(Debug, Clone, Copy)]
struct Loc {
    seg: u64,
    off: u64,
    /// Encoded record payload length (what `read_record` needs).
    enc_len: u32,
    /// The chunk's logical byte length (live-byte accounting).
    data_len: u64,
}

#[derive(Debug)]
struct Segment {
    log: RecordLog,
    /// Framed bytes of all records ever appended.
    total: u64,
    /// Framed bytes of `Put` records still in the index.
    live: u64,
}

/// What a [`SegmentStore::open`] recovered.
#[derive(Debug, Default, Clone)]
pub struct SegmentRecovery {
    /// Chunks restored into the index.
    pub chunks: usize,
    /// Their logical bytes.
    pub chunk_bytes: u64,
    /// Files whose tail was torn and truncated.
    pub torn_files: usize,
}

/// The log-structured on-disk chunk store of one provider.
#[derive(Debug)]
pub struct SegmentStore {
    dir: PathBuf,
    segments: BTreeMap<u64, Segment>,
    active: u64,
    index: FastMap<ChunkId, Loc>,
    segment_bytes: u64,
    refs_log: RecordLog,
    /// Delta records appended to `refs_log` since the last snapshot
    /// rewrite.
    refs_ops: u64,
}

fn seg_path(dir: &Path, n: u64) -> PathBuf {
    dir.join(format!("seg-{n}.log"))
}

impl SegmentStore {
    /// Open (or create) the store under `dir`, replaying every segment
    /// and the refcount log. Returns the store, the recovered refcounts
    /// (implicit base 1 made explicit for every indexed chunk), and
    /// recovery statistics. Replay never panics: torn tails are
    /// truncated, undecodable records discarded.
    pub fn open(
        dir: &Path,
        segment_bytes: u64,
    ) -> io::Result<(Self, FastMap<ChunkId, u64>, SegmentRecovery)> {
        let mut stats = SegmentRecovery::default();
        // Discover segment files. The directory may not exist yet (lazy
        // creation), which reads as an empty store.
        let mut seg_nos: Vec<u64> = Vec::new();
        match std::fs::read_dir(dir) {
            Ok(entries) => {
                for entry in entries {
                    let name = entry?.file_name();
                    let name = name.to_string_lossy();
                    if let Some(num) = name
                        .strip_prefix("seg-")
                        .and_then(|s| s.strip_suffix(".log"))
                    {
                        if let Ok(n) = num.parse::<u64>() {
                            seg_nos.push(n);
                        }
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        seg_nos.sort_unstable();

        // Replay segments in creation order: later records win.
        let mut segments = BTreeMap::new();
        let mut index: FastMap<ChunkId, Loc> = FastMap::default();
        for &n in &seg_nos {
            let (records, log, torn) = RecordLog::open(&seg_path(dir, n))?;
            stats.torn_files += torn as usize;
            let total = log.len();
            let mut seg = Segment {
                log,
                total,
                live: 0,
            };
            for (off, payload) in records {
                match bff_wire::decode::<ChunkRecord>(&payload) {
                    Ok(ChunkRecord::Put { id, data }) => {
                        let framed = RecordLog::framed_len(payload.len());
                        if let Some(prev) = index.insert(
                            id,
                            Loc {
                                seg: n,
                                off,
                                enc_len: payload.len() as u32,
                                data_len: data.len(),
                            },
                        ) {
                            // A replica-retry duplicate: the earlier
                            // copy's bytes are dead weight now.
                            if prev.seg == n {
                                seg.live -= RecordLog::framed_len(prev.enc_len as usize);
                            } else if let Some(s) = segments.get_mut(&prev.seg) {
                                let s: &mut Segment = s;
                                s.live -= RecordLog::framed_len(prev.enc_len as usize);
                            }
                        }
                        seg.live += framed;
                    }
                    Ok(ChunkRecord::Free { id }) => {
                        if let Some(prev) = index.remove(&id) {
                            let framed = RecordLog::framed_len(prev.enc_len as usize);
                            if prev.seg == n {
                                seg.live -= framed;
                            } else if let Some(s) = segments.get_mut(&prev.seg) {
                                let s: &mut Segment = s;
                                s.live -= framed;
                            }
                        }
                    }
                    // An undecodable (but checksum-clean) record means
                    // version skew; skipping it loses at most that
                    // record, never the file.
                    Err(_) => {}
                }
            }
            segments.insert(n, seg);
        }
        let active = seg_nos.last().copied().unwrap_or(0);
        if segments.is_empty() {
            let (_, log, _) = RecordLog::open(&seg_path(dir, 0))?;
            segments.insert(
                0,
                Segment {
                    log,
                    total: 0,
                    live: 0,
                },
            );
        }

        // Replay the refcount log against the recovered index.
        let (ref_records, refs_log, refs_torn) = RecordLog::open(&dir.join("refs.log"))?;
        stats.torn_files += refs_torn as usize;
        let mut counts: FastMap<ChunkId, u64> = FastMap::default();
        let mut refs_ops = 0u64;
        for (_, payload) in ref_records {
            match bff_wire::decode::<RefRecord>(&payload) {
                Ok(RefRecord::Snapshot(list)) => {
                    counts.clear();
                    refs_ops = 0;
                    for (id, n) in list {
                        if index.contains_key(&id) {
                            counts.insert(id, n);
                        }
                    }
                }
                Ok(RefRecord::Retain { id, n }) => {
                    refs_ops += 1;
                    if index.contains_key(&id) {
                        *counts.entry(id).or_insert(1) += n;
                    }
                }
                Ok(RefRecord::Release { id, n }) => {
                    refs_ops += 1;
                    if !index.contains_key(&id) {
                        continue;
                    }
                    let cur = counts.entry(id).or_insert(1);
                    *cur = cur.saturating_sub(n);
                    if *cur == 0 {
                        // The matching Free record was lost with an
                        // unsynced tail: honor the release anyway.
                        counts.remove(&id);
                        index.remove(&id);
                    }
                }
                Err(_) => {}
            }
        }
        // Rebuild live-byte accounting after release-driven removals and
        // materialize the implicit base count for every surviving chunk.
        for seg in segments.values_mut() {
            seg.live = 0;
        }
        let mut refs: FastMap<ChunkId, u64> = FastMap::default();
        for (&id, loc) in &index {
            if let Some(seg) = segments.get_mut(&loc.seg) {
                seg.live += RecordLog::framed_len(loc.enc_len as usize);
            }
            stats.chunks += 1;
            stats.chunk_bytes += loc.data_len;
            refs.insert(id, counts.get(&id).copied().unwrap_or(1));
        }

        let store = SegmentStore {
            dir: dir.to_path_buf(),
            segments,
            active,
            index,
            segment_bytes: segment_bytes.max(1),
            refs_log,
            refs_ops,
        };
        Ok((store, refs, stats))
    }

    /// Whether `id` is stored.
    pub fn contains(&self, id: ChunkId) -> bool {
        self.index.contains_key(&id)
    }

    /// Logical byte length of `id`, if stored.
    pub fn data_len(&self, id: ChunkId) -> Option<u64> {
        self.index.get(&id).map(|l| l.data_len)
    }

    /// Number of chunks stored.
    pub fn chunk_count(&self) -> usize {
        self.index.len()
    }

    fn active_seg(&mut self) -> &mut Segment {
        self.segments
            .get_mut(&self.active)
            .expect("active segment exists")
    }

    fn rotate_if_full(&mut self) -> io::Result<()> {
        if self.active_seg().log.len() < self.segment_bytes {
            return Ok(());
        }
        // Seal by fsyncing the outgoing segment, then start the next.
        // Forced, not dirty-gated: a group-commit leader may hold an
        // unflushed claim on this segment, and "sealed ⇒ durable" is
        // what lets a group sync cover only the active segment.
        self.active_seg().log.sync_force()?;
        let next = self.active + 1;
        let (_, log, _) = RecordLog::open(&seg_path(&self.dir, next))?;
        self.segments.insert(
            next,
            Segment {
                log,
                total: 0,
                live: 0,
            },
        );
        self.active = next;
        Ok(())
    }

    /// Append a `Put` record for `id`. Idempotent: an id already in the
    /// index is left untouched (chunk ids never carry different data).
    /// Returns `true` if the chunk was newly stored.
    pub fn put(&mut self, id: ChunkId, data: &Payload) -> io::Result<bool> {
        if self.index.contains_key(&id) {
            return Ok(false);
        }
        let payload = bff_wire::encode(&ChunkRecord::Put {
            id,
            data: data.clone(),
        });
        let seg = self.active;
        let s = self.active_seg();
        let off = s.log.append(&payload)?;
        let framed = RecordLog::framed_len(payload.len());
        s.total += framed;
        s.live += framed;
        self.index.insert(
            id,
            Loc {
                seg,
                off,
                enc_len: payload.len() as u32,
                data_len: data.len(),
            },
        );
        self.rotate_if_full()?;
        Ok(true)
    }

    /// Append a `Free` tombstone and drop `id` from the index. May
    /// trigger compaction of the segment that held the chunk.
    pub fn free(&mut self, id: ChunkId) -> io::Result<()> {
        let Some(loc) = self.index.remove(&id) else {
            return Ok(());
        };
        let payload = bff_wire::encode(&ChunkRecord::Free { id });
        let s = self.active_seg();
        s.log.append(&payload)?;
        s.total += RecordLog::framed_len(payload.len());
        let framed = RecordLog::framed_len(loc.enc_len as usize);
        if let Some(seg) = self.segments.get_mut(&loc.seg) {
            seg.live -= framed.min(seg.live);
        }
        self.rotate_if_full()?;
        self.maybe_compact(loc.seg)?;
        Ok(())
    }

    /// Read `id`'s bytes back, verifying the stored checksum. `None`
    /// means absent *or* failed verification — corrupt bytes are never
    /// returned, the caller falls back to another replica.
    pub fn read(&self, id: ChunkId) -> Option<Payload> {
        let loc = self.index.get(&id)?;
        let seg = self.segments.get(&loc.seg)?;
        let payload = seg.log.read_record(loc.off, loc.enc_len).ok()??;
        match bff_wire::decode::<ChunkRecord>(&payload) {
            Ok(ChunkRecord::Put { id: got, data }) if got == id => Some(data),
            _ => None,
        }
    }

    /// Append a refcount delta (durable at the next [`SegmentStore::sync`]).
    pub fn log_retain(&mut self, id: ChunkId, n: u64) -> io::Result<()> {
        self.append_ref(&RefRecord::Retain { id, n })
    }

    /// Append a release delta. Deliberately *not* synced on the ack
    /// path: losing one is a bounded storage leak, not corruption.
    pub fn log_release(&mut self, id: ChunkId, n: u64) -> io::Result<()> {
        self.append_ref(&RefRecord::Release { id, n })
    }

    fn append_ref(&mut self, rec: &RefRecord) -> io::Result<()> {
        self.refs_log.append(&bff_wire::encode(rec))?;
        self.refs_ops += 1;
        Ok(())
    }

    /// Rewrite `refs.log` as one absolute `Snapshot` if enough deltas
    /// have accumulated. `counts` is the provider's authoritative
    /// refcount map.
    pub fn maybe_rewrite_refs(&mut self, counts: &FastMap<ChunkId, u64>) -> io::Result<()> {
        if self.refs_ops < REFS_REWRITE_OPS {
            return Ok(());
        }
        let non_unit: Vec<(ChunkId, u64)> = counts
            .iter()
            .filter(|(_, &n)| n != 1)
            .map(|(&id, &n)| (id, n))
            .collect();
        let tmp = self.dir.join("refs.log.tmp");
        let _ = std::fs::remove_file(&tmp);
        let (_, mut fresh, _) = RecordLog::open(&tmp)?;
        fresh.append(&bff_wire::encode(&RefRecord::Snapshot(non_unit)))?;
        fresh.sync()?;
        drop(fresh);
        let live = self.dir.join("refs.log");
        std::fs::rename(&tmp, &live)?;
        let (_, log, _) = RecordLog::open(&live)?;
        self.refs_log = log;
        self.refs_ops = 0;
        Ok(())
    }

    fn maybe_compact(&mut self, seg_no: u64) -> io::Result<()> {
        if seg_no == self.active {
            return Ok(());
        }
        let Some(seg) = self.segments.get(&seg_no) else {
            return Ok(());
        };
        if seg.total == 0 || (seg.live as f64 / seg.total as f64) >= COMPACT_LIVE_FRAC {
            return Ok(());
        }
        self.compact(seg_no)
    }

    /// Rewrite sealed segment `seg_no`: carry live puts and still-needed
    /// tombstones into the active segment, then delete the file.
    fn compact(&mut self, seg_no: u64) -> io::Result<()> {
        let path = seg_path(&self.dir, seg_no);
        // Re-scan the file: the in-memory state only holds per-chunk
        // locations, not the record sequence.
        let (records, _, _) = RecordLog::open(&path)?;
        for (off, payload) in records {
            match bff_wire::decode::<ChunkRecord>(&payload) {
                Ok(ChunkRecord::Put { id, .. }) => {
                    let live_here = self
                        .index
                        .get(&id)
                        .is_some_and(|l| l.seg == seg_no && l.off == off);
                    if !live_here {
                        continue;
                    }
                    let seg = self.active;
                    let s = self.active_seg();
                    let new_off = s.log.append(&payload)?;
                    let framed = RecordLog::framed_len(payload.len());
                    s.total += framed;
                    s.live += framed;
                    if let Some(loc) = self.index.get_mut(&id) {
                        loc.seg = seg;
                        loc.off = new_off;
                    }
                    // Compaction moves committed data, so the copy must
                    // be durable before the source is deleted.
                    if self.active_seg().log.len() >= self.segment_bytes {
                        self.rotate_if_full()?;
                    }
                }
                Ok(ChunkRecord::Free { id }) => {
                    // A tombstone for a chunk still absent from the
                    // index may be shadowing a Put in an *older*
                    // segment; carry it forward.
                    if self.index.contains_key(&id) {
                        continue;
                    }
                    let s = self.active_seg();
                    s.log.append(&payload)?;
                    s.total += RecordLog::framed_len(payload.len());
                }
                Err(_) => {}
            }
        }
        // Forced for the same reason as rotation's seal: the moved
        // copies must be durable before the source file disappears,
        // regardless of in-flight group-commit claims.
        self.active_seg().log.sync_force()?;
        self.segments.remove(&seg_no);
        std::fs::remove_file(&path)?;
        Ok(())
    }

    /// Fsync the active segment and the refcount log — the commit-ack
    /// barrier. Returns whether any fdatasync was actually issued.
    /// Sealed segments need no fsync here: rotation and compaction force
    /// one before sealing, so every append at-or-before the current
    /// high-water mark is covered by these two files alone.
    pub fn sync(&mut self) -> io::Result<bool> {
        let handles = self.sync_handles()?;
        for f in &handles {
            f.sync_data()?;
        }
        Ok(!handles.is_empty())
    }

    /// Claim the pending appends for an out-of-lock fsync: handles for
    /// the active segment and the refcount log (empty when clean). The
    /// group-commit leader grabs these under the store's owning lock,
    /// drops it, then `sync_data`s the handles while appenders keep
    /// going — see [`RecordLog::sync_handle`] for the claim semantics.
    pub fn sync_handles(&mut self) -> io::Result<Vec<File>> {
        let mut out = Vec::with_capacity(2);
        if let Some(f) = self.active_seg().log.sync_handle()? {
            out.push(f);
        }
        if let Some(f) = self.refs_log.sync_handle()? {
            out.push(f);
        }
        Ok(out)
    }

    /// Total framed bytes across all segment files (compaction
    /// diagnostics).
    pub fn disk_bytes(&self) -> u64 {
        self.segments.values().map(|s| s.log.len()).sum()
    }
}

// ---------------------------------------------------------------------
// Manager journal.
// ---------------------------------------------------------------------

/// The manager-side mutation journal of one server process.
#[derive(Debug)]
pub struct Journal {
    log: RecordLog,
    key_mark: u64,
    chunk_mark: u64,
}

impl Journal {
    /// Open (or create) the journal at `path`, returning the replayable
    /// records in append order and whether a torn tail was discarded.
    pub fn open(path: &Path) -> io::Result<(Vec<JournalRecord>, Journal, bool)> {
        let (raw, log, torn) = RecordLog::open(path)?;
        let mut records = Vec::with_capacity(raw.len());
        let (mut key_mark, mut chunk_mark) = (0u64, 0u64);
        for (_, payload) in raw {
            // Checksum-clean but undecodable means version skew; skip
            // the record rather than the journal.
            let Ok(rec) = bff_wire::decode::<JournalRecord>(&payload) else {
                continue;
            };
            match rec {
                JournalRecord::KeyMark(k) => key_mark = key_mark.max(k),
                JournalRecord::ChunkMark(c) => chunk_mark = chunk_mark.max(c),
                _ => {}
            }
            records.push(rec);
        }
        Ok((
            records,
            Journal {
                log,
                key_mark,
                chunk_mark,
            },
            torn,
        ))
    }

    /// Journal a successful version-manager mutation. Append-only: the
    /// fsync-before-ack barrier is crossed by the caller *after* the
    /// state-machine lock is released (via [`Journal::sync`] or a
    /// [`GroupCommit`] ticket), so concurrent mutations interleave
    /// their appends and share one `sync_data`.
    pub fn append_vm(&mut self, op: &VmReq) -> io::Result<()> {
        self.log
            .append(&bff_wire::encode(&JournalRecord::VmOp(op.clone())))?;
        Ok(())
    }

    /// Journal a metadata-node write. Not fsynced here: metadata nodes
    /// are unreachable until the publish that references them, and the
    /// publish's own fsync covers everything appended before it.
    pub fn append_meta(&mut self, shard: u32, nodes: &[(NodeKey, TreeNode)]) -> io::Result<()> {
        let rec = JournalRecord::MetaNodes {
            shard,
            nodes: nodes.to_vec(),
        };
        self.log.append(&bff_wire::encode(&rec))?;
        Ok(())
    }

    /// Make the node-key allocator durable up to at least `next`:
    /// appends a new mark only when `next` crosses the last persisted
    /// one (one barrier per [`MARK_STRIDE`] ids). Returns whether a
    /// mark was appended — `true` means the caller must cross the sync
    /// barrier before acking the reservation.
    pub fn note_key(&mut self, next: u64) -> io::Result<bool> {
        if next <= self.key_mark {
            return Ok(false);
        }
        self.key_mark = next + MARK_STRIDE;
        self.log
            .append(&bff_wire::encode(&JournalRecord::KeyMark(self.key_mark)))?;
        Ok(true)
    }

    /// [`Journal::note_key`] for the chunk-id allocator.
    pub fn note_chunk(&mut self, next: u64) -> io::Result<bool> {
        if next <= self.chunk_mark {
            return Ok(false);
        }
        self.chunk_mark = next + MARK_STRIDE;
        self.log
            .append(&bff_wire::encode(&JournalRecord::ChunkMark(
                self.chunk_mark,
            )))?;
        Ok(true)
    }

    /// Fsync the journal — the per-ack barrier (holds the log across
    /// the `sync_data`, so a no-op return means a completed sync
    /// already covered everything appended). Returns whether an
    /// fdatasync was actually issued.
    pub fn sync(&mut self) -> io::Result<bool> {
        self.log.sync()
    }

    /// Claim the pending appends for an out-of-lock fsync (the
    /// group-commit leader path) — see [`RecordLog::sync_handle`].
    pub fn sync_handle(&mut self) -> io::Result<Option<File>> {
        self.log.sync_handle()
    }
}

/// What a [`crate::server::ServerState::recover`] restored, for the
/// server process to report before announcing readiness.
#[derive(Debug, Default, Clone)]
pub struct RecoveryReport {
    /// Journal records replayed into the manager roles.
    pub journal_records: usize,
    /// Whether the journal had a torn tail.
    pub journal_torn: bool,
    /// Chunks restored across all providers.
    pub chunks: usize,
    /// Their logical bytes.
    pub chunk_bytes: u64,
    /// Segment/ref files with truncated torn tails.
    pub torn_files: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bff-durable-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn payload(seed: u64, len: u64) -> Payload {
        Payload::synth(seed, 0, len)
    }

    #[test]
    fn segment_store_roundtrip_and_recovery() {
        let dir = scratch("roundtrip");
        {
            let (mut s, refs, stats) = SegmentStore::open(&dir, 1 << 20).unwrap();
            assert_eq!(stats.chunks, 0);
            assert!(refs.is_empty());
            assert!(s.put(ChunkId(1), &payload(7, 1000)).unwrap());
            assert!(!s.put(ChunkId(1), &payload(7, 1000)).unwrap(), "idempotent");
            assert!(s.put(ChunkId(2), &payload(9, 500)).unwrap());
            s.log_retain(ChunkId(1), 2).unwrap();
            s.sync().unwrap();
            assert!(s.read(ChunkId(1)).unwrap().content_eq(&payload(7, 1000)));
        }
        let (s, refs, stats) = SegmentStore::open(&dir, 1 << 20).unwrap();
        assert_eq!(stats.chunks, 2);
        assert_eq!(stats.chunk_bytes, 1500);
        assert_eq!(stats.torn_files, 0);
        assert_eq!(refs.get(&ChunkId(1)), Some(&3), "1 implicit + 2 retained");
        assert_eq!(refs.get(&ChunkId(2)), Some(&1), "implicit base");
        assert!(s.read(ChunkId(2)).unwrap().content_eq(&payload(9, 500)));
        assert!(s.read(ChunkId(3)).is_none());
    }

    #[test]
    fn free_tombstone_survives_restart() {
        let dir = scratch("free");
        {
            let (mut s, _, _) = SegmentStore::open(&dir, 1 << 20).unwrap();
            s.put(ChunkId(1), &payload(1, 100)).unwrap();
            s.put(ChunkId(2), &payload(2, 100)).unwrap();
            s.free(ChunkId(1)).unwrap();
            s.sync().unwrap();
        }
        let (s, refs, stats) = SegmentStore::open(&dir, 1 << 20).unwrap();
        assert_eq!(stats.chunks, 1);
        assert!(s.read(ChunkId(1)).is_none());
        assert!(!refs.contains_key(&ChunkId(1)));
        assert!(s.contains(ChunkId(2)));
    }

    #[test]
    fn rotation_and_compaction_preserve_live_chunks() {
        let dir = scratch("compact");
        let seg_bytes = 4 * 1024;
        let (mut s, _, _) = SegmentStore::open(&dir, seg_bytes).unwrap();
        // Fill several segments with literal (incompressible on the
        // wire) payloads so rotation actually happens.
        let blob = |i: u64| {
            Payload::from_bytes((0..512).map(|b| (b as u8) ^ i as u8).collect::<Vec<u8>>())
        };
        for i in 0..64u64 {
            s.put(ChunkId(i + 1), &blob(i)).unwrap();
        }
        assert!(s.segments.len() > 1, "rotation produced sealed segments");
        // Free most chunks: sealed segments drop below the live
        // threshold and compact away.
        for i in 0..56u64 {
            s.free(ChunkId(i + 1)).unwrap();
        }
        s.sync().unwrap();
        for i in 56..64u64 {
            assert!(
                s.read(ChunkId(i + 1)).unwrap().content_eq(&blob(i)),
                "chunk {i} survives compaction"
            );
        }
        let disk = s.disk_bytes();
        drop(s);
        // Recovery after compaction sees exactly the survivors.
        let (s, _, stats) = SegmentStore::open(&dir, seg_bytes).unwrap();
        assert_eq!(stats.chunks, 8);
        assert_eq!(s.disk_bytes(), disk);
        for i in 56..64u64 {
            assert!(s.read(ChunkId(i + 1)).unwrap().content_eq(&blob(i)));
        }
    }

    #[test]
    fn refs_rewrite_keeps_counts() {
        let dir = scratch("refsrw");
        let (mut s, _, _) = SegmentStore::open(&dir, 1 << 20).unwrap();
        s.put(ChunkId(1), &payload(1, 64)).unwrap();
        s.put(ChunkId(2), &payload(2, 64)).unwrap();
        s.log_retain(ChunkId(1), 4).unwrap();
        s.refs_ops = REFS_REWRITE_OPS; // force the rewrite path
        let mut counts = FastMap::default();
        counts.insert(ChunkId(1), 5u64);
        counts.insert(ChunkId(2), 1u64);
        s.maybe_rewrite_refs(&counts).unwrap();
        s.sync().unwrap();
        drop(s);
        let (_, refs, _) = SegmentStore::open(&dir, 1 << 20).unwrap();
        assert_eq!(refs.get(&ChunkId(1)), Some(&5));
        assert_eq!(refs.get(&ChunkId(2)), Some(&1));
    }

    #[test]
    fn group_commit_acks_every_ticket_and_batches_fsyncs() {
        let dir = scratch("gc");
        std::fs::create_dir_all(&dir).unwrap();
        let (_, log, _) = RecordLog::open(&dir.join("gc.log")).unwrap();
        let log = Arc::new(Mutex::new(log));
        let stats = Arc::new(DurabilityStats::default());
        let gc = Arc::new(GroupCommit::new(
            Duration::from_micros(500),
            Arc::clone(&stats),
        ));
        const WRITERS: usize = 8;
        const APPENDS: usize = 16;
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let (log, gc) = (Arc::clone(&log), Arc::clone(&gc));
                scope.spawn(move || {
                    for i in 0..APPENDS {
                        let ticket = {
                            let mut log = log.lock();
                            log.append(format!("{w}:{i}").as_bytes()).unwrap();
                            gc.ticket()
                        };
                        gc.commit(ticket, || {
                            let handle = log.lock().sync_handle()?;
                            if let Some(f) = handle {
                                f.sync_data()?;
                            }
                            Ok(())
                        })
                        .unwrap();
                    }
                });
            }
        });
        let snap = stats.snapshot();
        assert_eq!(snap.acks, (WRITERS * APPENDS) as u64, "every commit acked");
        assert!(snap.fsyncs >= 1 && snap.fsyncs <= snap.acks);
        // Every acked append survives a reopen (the barrier is real).
        drop(log);
        let (recs, _, torn) = RecordLog::open(&dir.join("gc.log")).unwrap();
        assert!(!torn);
        assert_eq!(recs.len(), WRITERS * APPENDS);
    }

    #[test]
    fn group_commit_lone_writer_is_bounded_by_window() {
        // A single committer with no cohort must become leader and
        // return promptly (no eternal park waiting for followers).
        let stats = Arc::new(DurabilityStats::default());
        let gc = GroupCommit::new(Duration::from_millis(50), Arc::clone(&stats));
        let ticket = gc.ticket();
        let started = Instant::now();
        gc.commit(ticket, || Ok(())).unwrap();
        assert!(
            started.elapsed() < Duration::from_millis(50),
            "lone writer led immediately instead of parking"
        );
        assert_eq!(stats.snapshot().acks, 1);
    }

    #[test]
    fn journal_replay_and_marks() {
        let dir = scratch("journal");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.log");
        {
            let (records, mut j, torn) = Journal::open(&path).unwrap();
            assert!(records.is_empty() && !torn);
            j.append_vm(&VmReq::CreateBlob {
                size: 1 << 20,
                chunk_size: 4096,
            })
            .unwrap();
            j.note_key(100).unwrap();
            j.note_key(200).unwrap(); // inside the stride: no new mark
            j.note_chunk(7).unwrap();
            let node = TreeNode::Inner {
                left: NodeKey(1),
                right: NodeKey::NULL,
            };
            j.append_meta(3, &[(NodeKey(9), node)]).unwrap();
        }
        let (records, _, torn) = Journal::open(&path).unwrap();
        assert!(!torn);
        assert_eq!(records.len(), 4, "second note_key was absorbed");
        assert!(matches!(records[0], JournalRecord::VmOp(_)));
        assert!(matches!(records[1], JournalRecord::KeyMark(k) if k >= 100 + MARK_STRIDE));
        assert!(matches!(records[2], JournalRecord::ChunkMark(c) if c >= 7 + MARK_STRIDE));
        assert!(matches!(
            records[3],
            JournalRecord::MetaNodes { shard: 3, .. }
        ));
    }
}
