//! Chunk providers: the per-node stores that together form the common
//! storage pool aggregated from compute-node local disks (§3.1.1).
//!
//! A provider is a passive state machine; the client charges its fabric
//! costs (transfer to/from the provider node, disk read/write at the
//! provider) around these calls. The `hot` set models the provider host's
//! page cache: a chunk read once is served from memory afterwards.
//!
//! [`ProviderStore`] is the sharded container the service deploys:
//! one lock per provider (a shard), dense slot addressing instead of a
//! hashed map, and aggregate counters maintained with atomics. Fetch and
//! push tasks touching *distinct* providers therefore never contend on a
//! shared lock, which is what lets the fabric express the per-provider
//! parallelism of the paper's transfer scheme (§3.1.3), and the service's
//! storage metrics (`total_stored_bytes`, `total_chunks`) never stop the
//! data plane to aggregate.

use crate::api::ChunkId;
use crate::durable::{
    CommitPolicy, DurabilityStats, GroupCommit, SegmentRecovery, SegmentStore,
    DEFAULT_SEGMENT_BYTES,
};
use bff_data::{FastMap, FastSet, Payload};
use bff_net::NodeId;
use parking_lot::{Mutex, MutexGuard};
use std::collections::HashMap;
use std::fs::File;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Where a provider keeps chunk bytes: the historical in-memory map, or
/// the log-structured segment files of `crate::durable`.
///
/// The disk backend is fail-stop on *live* I/O errors (an append or
/// fsync failure panics — the durability contract can no longer be
/// honored), while recovery and reads never panic: corrupt records are
/// discarded or served as absent, and the client fails over to another
/// replica.
#[derive(Debug)]
enum ChunkStore {
    Mem(FastMap<ChunkId, Payload>),
    Disk(Box<SegmentStore>),
}

impl Default for ChunkStore {
    fn default() -> Self {
        ChunkStore::Mem(FastMap::default())
    }
}

/// One provider's chunk store.
#[derive(Debug, Default)]
pub struct Provider {
    chunks: ChunkStore,
    hot: FastSet<ChunkId>,
    stored_bytes: u64,
    /// Dedup reference counts: how many published leaf descriptors point
    /// at each chunk through the content-addressed write path. A fresh
    /// put starts at 1; every commit-by-reference retains once per use.
    /// Invariant: a refs entry exists iff the chunk exists, and is ≥ 1 —
    /// so a release can never underflow (releasing an absent chunk is a
    /// no-op, and a count that reaches 0 removes both together).
    refs: FastMap<ChunkId, u64>,
}

impl Provider {
    /// Empty in-memory provider.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open (or create) a disk-backed provider under `dir`, replaying
    /// its segment files and refcount log. The page-cache model starts
    /// cold: a restarted host serves its first read of each chunk from
    /// disk.
    pub fn recover(dir: &Path, segment_bytes: u64) -> std::io::Result<(Self, SegmentRecovery)> {
        let (store, refs, stats) = SegmentStore::open(dir, segment_bytes)?;
        Ok((
            Provider {
                chunks: ChunkStore::Disk(Box::new(store)),
                hot: FastSet::default(),
                stored_bytes: stats.chunk_bytes,
                refs,
            },
            stats,
        ))
    }

    /// Store a chunk, returning `(byte delta, newly stored)`. Chunk ids
    /// are globally unique, so an insert never replaces different data;
    /// re-putting the same id (replica retry) is idempotent with delta 0.
    /// The delta is signed so counters stay truthful even if a future
    /// caller breaks the never-different-data assumption.
    pub fn put(&mut self, id: ChunkId, data: Payload) -> (i64, bool) {
        let (delta, is_new) = match &mut self.chunks {
            ChunkStore::Mem(chunks) => {
                let new_len = data.len() as i64;
                let (prev_len, is_new) = match chunks.insert(id, data) {
                    Some(prev) => (prev.len() as i64, false),
                    None => (0, true),
                };
                (new_len - prev_len, is_new)
            }
            ChunkStore::Disk(store) => {
                let is_new = store.put(id, &data).expect("provider segment append");
                (if is_new { data.len() as i64 } else { 0 }, is_new)
            }
        };
        if is_new {
            self.refs.insert(id, 1);
        }
        self.stored_bytes = (self.stored_bytes as i64 + delta) as u64;
        // Freshly written data sits in the page cache.
        self.hot.insert(id);
        (delta, is_new)
    }

    /// Add one dedup reference to a stored chunk. Returns `false` (and
    /// changes nothing) if the chunk is not present — the caller treats
    /// that as a stale digest-index hit.
    pub fn retain(&mut self, id: ChunkId) -> bool {
        self.retain_n(id, 1)
    }

    /// Add `n` dedup references in one shard acquisition (the
    /// intra-commit duplicate path: a commit of N identical chunks bumps
    /// once by N−1 per replica instead of N−1 times).
    pub fn retain_n(&mut self, id: ChunkId, n: u64) -> bool {
        debug_assert!(n > 0, "retaining zero references is meaningless");
        if !self.has(id) {
            return false;
        }
        *self.refs.entry(id).or_insert(0) += n;
        if let ChunkStore::Disk(store) = &mut self.chunks {
            store.log_retain(id, n).expect("provider refs append");
            store
                .maybe_rewrite_refs(&self.refs)
                .expect("provider refs rewrite");
        }
        true
    }

    /// Drop one dedup reference. When the count reaches zero the chunk
    /// (and its page-cache entry) is removed and its bytes freed.
    /// Releasing an absent chunk — including a double release after the
    /// count already hit zero — is a harmless no-op: the count can never
    /// underflow. Returns `(freed bytes, chunk removed, reference
    /// dropped)`.
    pub fn release(&mut self, id: ChunkId) -> (u64, bool, bool) {
        self.release_n(id, 1)
    }

    /// Drop up to `n` dedup references in one shard acquisition (the
    /// rollback twin of [`Provider::retain_n`]). Saturates at zero —
    /// over-releasing removes the chunk and stops, it never underflows.
    pub fn release_n(&mut self, id: ChunkId, n: u64) -> (u64, bool, bool) {
        debug_assert!(n > 0, "releasing zero references is meaningless");
        let Some(count) = self.refs.get_mut(&id) else {
            return (0, false, false);
        };
        debug_assert!(*count >= 1, "refs entry exists ⇒ count ≥ 1");
        *count = count.saturating_sub(n);
        let emptied = *count == 0;
        if emptied {
            self.refs.remove(&id);
            self.hot.remove(&id);
        }
        let freed = match &mut self.chunks {
            ChunkStore::Mem(chunks) => {
                if emptied {
                    chunks.remove(&id).map_or(0, |p| p.len())
                } else {
                    0
                }
            }
            ChunkStore::Disk(store) => {
                store.log_release(id, n).expect("provider refs append");
                let freed = if emptied {
                    let len = store.data_len(id).unwrap_or(0);
                    store.free(id).expect("provider free append");
                    len
                } else {
                    0
                };
                store
                    .maybe_rewrite_refs(&self.refs)
                    .expect("provider refs rewrite");
                freed
            }
        };
        if !emptied {
            return (0, false, true);
        }
        self.stored_bytes -= freed;
        (freed, true, true)
    }

    /// Current dedup reference count of a chunk (`None` if absent).
    pub fn refcount(&self, id: ChunkId) -> Option<u64> {
        self.refs.get(&id).copied()
    }

    /// Fetch a chunk, reporting whether it was already cached in memory
    /// (`true`) or needs a disk read charged (`false`).
    pub fn get(&mut self, id: ChunkId) -> Option<(Payload, bool)> {
        let data = match &self.chunks {
            ChunkStore::Mem(chunks) => chunks.get(&id)?.clone(),
            // A record that fails checksum verification reads as
            // absent: corrupt bytes are never served, the client fails
            // over to another replica.
            ChunkStore::Disk(store) => store.read(id)?,
        };
        let was_hot = !self.hot.insert(id);
        Some((data, was_hot))
    }

    /// Whether the chunk is present.
    pub fn has(&self, id: ChunkId) -> bool {
        match &self.chunks {
            ChunkStore::Mem(chunks) => chunks.contains_key(&id),
            ChunkStore::Disk(store) => store.contains(id),
        }
    }

    /// Read a stored chunk without touching the page-cache model — a
    /// metadata-side integrity check (dedup hit verification), not a
    /// data-plane read, so it must not warm the `hot` set.
    pub fn peek(&self, id: ChunkId) -> Option<Payload> {
        match &self.chunks {
            ChunkStore::Mem(chunks) => chunks.get(&id).cloned(),
            ChunkStore::Disk(store) => store.read(id),
        }
    }

    /// Flush appended segment and refcount records to stable storage —
    /// the barrier every commit ack crosses. No-op for the in-memory
    /// backend; returns whether an fdatasync was actually issued.
    /// Fail-stop on I/O errors: a provider that cannot fsync cannot
    /// honor the acks it already implies.
    pub fn sync(&mut self) -> bool {
        match &mut self.chunks {
            ChunkStore::Disk(store) => store.sync().expect("provider log sync"),
            ChunkStore::Mem(_) => false,
        }
    }

    /// Claim the pending appends for an out-of-lock fsync (the
    /// group-commit leader path; empty for the in-memory backend) —
    /// see [`SegmentStore::sync_handles`].
    pub fn sync_handles(&mut self) -> Vec<File> {
        match &mut self.chunks {
            ChunkStore::Disk(store) => store.sync_handles().expect("provider sync handles"),
            ChunkStore::Mem(_) => Vec::new(),
        }
    }

    /// Total payload bytes stored (the storage-consumption metric behind
    /// the paper's "storage and bandwidth usage reduced by as much as
    /// 90%" claim).
    pub fn stored_bytes(&self) -> u64 {
        self.stored_bytes
    }

    /// Number of chunks stored.
    pub fn chunk_count(&self) -> usize {
        match &self.chunks {
            ChunkStore::Mem(chunks) => chunks.len(),
            ChunkStore::Disk(store) => store.chunk_count(),
        }
    }

    /// Drop the page-cache model state (e.g. to simulate memory pressure
    /// in ablations).
    pub fn drop_caches(&mut self) {
        self.hot.clear();
    }
}

/// The deployed provider set, sharded one lock per provider.
///
/// Addressing is dense: node → slot resolves once through a small map
/// built at deploy time, and everything after is a vector index. The
/// aggregate storage metrics are kept in atomics updated on
/// [`ProviderStore::put`], so reading them never takes any shard lock —
/// the service can report storage consumption while writes are in flight
/// without perturbing them.
#[derive(Debug)]
pub struct ProviderStore {
    /// Provider nodes in topology order (slot i ↔ nodes[i]).
    nodes: Vec<NodeId>,
    slot_of: HashMap<NodeId, usize>,
    shards: Vec<Mutex<Provider>>,
    /// One commit coordinator per shard (separate files, separate
    /// barriers), present only for durable deployments running group
    /// commit. `None` means per-ack fsync under the shard lock — the
    /// measurable baseline discipline.
    commit: Option<Vec<Arc<GroupCommit>>>,
    /// Deployment-wide durability counters (shared with the journal's
    /// coordinator; all-zero for in-memory deployments).
    stats: Arc<DurabilityStats>,
    stored_bytes: AtomicU64,
    chunks: AtomicU64,
}

impl ProviderStore {
    /// Deploy one provider per node.
    pub fn new(nodes: &[NodeId]) -> Self {
        Self {
            nodes: nodes.to_vec(),
            slot_of: nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect(),
            shards: nodes.iter().map(|_| Mutex::new(Provider::new())).collect(),
            commit: None,
            stats: Arc::new(DurabilityStats::default()),
            stored_bytes: AtomicU64::new(0),
            chunks: AtomicU64::new(0),
        }
    }

    /// Deploy disk-backed providers, one per node, each replaying its
    /// own directory `<base_dir>/provider-<node>/`, with the commit-ack
    /// discipline `policy` asks for. The aggregate counters start from
    /// the recovered per-shard truth.
    pub fn recover(
        nodes: &[NodeId],
        base_dir: &Path,
        policy: &CommitPolicy,
    ) -> std::io::Result<(Self, SegmentRecovery)> {
        let mut shards = Vec::with_capacity(nodes.len());
        let mut total = SegmentRecovery::default();
        for node in nodes {
            let dir = base_dir.join(format!("provider-{}", node.0));
            let (p, stats) = Provider::recover(&dir, DEFAULT_SEGMENT_BYTES)?;
            total.chunks += stats.chunks;
            total.chunk_bytes += stats.chunk_bytes;
            total.torn_files += stats.torn_files;
            shards.push(Mutex::new(p));
        }
        let commit = policy.group_commit.then(|| {
            nodes
                .iter()
                .map(|_| policy.coordinator().unwrap())
                .collect()
        });
        Ok((
            Self {
                nodes: nodes.to_vec(),
                slot_of: nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect(),
                shards,
                commit,
                stats: Arc::clone(&policy.stats),
                stored_bytes: AtomicU64::new(total.chunk_bytes),
                chunks: AtomicU64::new(total.chunks as u64),
            },
            total,
        ))
    }

    /// Number of providers.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the store has no providers.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Whether `node` hosts a provider.
    pub fn contains(&self, node: NodeId) -> bool {
        self.slot_of.contains_key(&node)
    }

    /// Lock `node`'s provider shard. Holding one shard does not block any
    /// other provider.
    pub fn lock(&self, node: NodeId) -> Option<MutexGuard<'_, Provider>> {
        self.slot_of.get(&node).map(|&i| self.shards[i].lock())
    }

    /// Fold one shard outcome into the aggregate counters (`chunks < 0`
    /// after a release removed chunks).
    fn apply_delta(&self, bytes: i64, chunks: i64) {
        match bytes.cmp(&0) {
            std::cmp::Ordering::Greater => {
                self.stored_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
            }
            std::cmp::Ordering::Less => {
                self.stored_bytes
                    .fetch_sub(bytes.unsigned_abs(), Ordering::Relaxed);
            }
            std::cmp::Ordering::Equal => {}
        }
        match chunks.cmp(&0) {
            std::cmp::Ordering::Greater => {
                self.chunks.fetch_add(chunks as u64, Ordering::Relaxed);
            }
            std::cmp::Ordering::Less => {
                self.chunks
                    .fetch_sub(chunks.unsigned_abs(), Ordering::Relaxed);
            }
            std::cmp::Ordering::Equal => {}
        }
    }

    /// Run `op` on `slot`'s provider under its shard lock, then cross
    /// the commit-ack durability barrier before returning. `op` returns
    /// `(out, barrier)`; with `barrier == false` (failed op, nothing
    /// appended) the barrier is skipped.
    ///
    /// Group commit: the sync ticket is taken under the shard lock (so
    /// append-then-ticket is ordered against the leader's high-water
    /// capture), the lock drops, and the committer parks — appends on
    /// this shard keep interleaving while one leader fsyncs for the
    /// whole cohort. The leader re-takes the shard lock only long
    /// enough to claim file handles; the `sync_data` itself runs
    /// lock-free. Per-ack baseline: fsync under the shard lock, exactly
    /// the pre-group-commit discipline.
    fn committed<T>(&self, slot: usize, op: impl FnOnce(&mut Provider) -> (T, bool)) -> T {
        match &self.commit {
            Some(coordinators) => {
                let gc = &coordinators[slot];
                let (out, ticket) = {
                    let mut shard = self.shards[slot].lock();
                    let (out, barrier) = op(&mut shard);
                    (out, barrier.then(|| gc.ticket()))
                };
                if let Some(ticket) = ticket {
                    gc.commit(ticket, || {
                        let handles = self.shards[slot].lock().sync_handles();
                        for f in &handles {
                            f.sync_data()?;
                        }
                        Ok(())
                    })
                    .expect("provider group sync");
                }
                out
            }
            None => {
                let started = Instant::now();
                let mut shard = self.shards[slot].lock();
                let (out, barrier) = op(&mut shard);
                if barrier && shard.sync() {
                    drop(shard);
                    self.stats.note_fsync();
                    self.stats.note_ack(started.elapsed());
                }
                out
            }
        }
    }

    /// Store a chunk at `node`, maintaining the aggregate counters.
    /// Durable before return on disk-backed providers (the ack
    /// barrier). Returns `false` if `node` hosts no provider.
    pub fn put(&self, node: NodeId, id: ChunkId, data: Payload) -> bool {
        let Some(&slot) = self.slot_of.get(&node) else {
            return false;
        };
        let (bytes, is_new) = self.committed(slot, |shard| (shard.put(id, data), true));
        self.apply_delta(bytes, is_new as i64);
        true
    }

    /// Add one dedup reference to `id` at `node` (see
    /// [`Provider::retain`]). Returns `false` if the node hosts no
    /// provider or the chunk is absent.
    pub fn retain(&self, node: NodeId, id: ChunkId) -> bool {
        self.retain_n(node, id, 1)
    }

    /// Add `n` dedup references under one shard acquisition (see
    /// [`Provider::retain_n`]). Durable before return on disk-backed
    /// providers: a commit-by-reference ack is a durability promise for
    /// the reference, exactly like a put's for the bytes.
    pub fn retain_n(&self, node: NodeId, id: ChunkId, n: u64) -> bool {
        match self.slot_of.get(&node) {
            // A rejected retain (stale digest hit) appends nothing and
            // promises nothing: no barrier.
            Some(&slot) => self.committed(slot, |shard| {
                let ok = shard.retain_n(id, n);
                (ok, ok)
            }),
            None => false,
        }
    }

    /// Drop one dedup reference to `id` at `node`, maintaining the
    /// aggregate counters (see [`Provider::release`]). Never underflows;
    /// returns `true` only when a reference was actually dropped.
    pub fn release(&self, node: NodeId, id: ChunkId) -> bool {
        self.release_n(node, id, 1)
    }

    /// Drop up to `n` dedup references under one shard acquisition (see
    /// [`Provider::release_n`]), maintaining the aggregate counters.
    pub fn release_n(&self, node: NodeId, id: ChunkId, n: u64) -> bool {
        self.release_counted(node, id, n).2
    }

    /// [`ProviderStore::release_n`] with the garbage collector's view:
    /// `(bytes freed, chunk removed, reference dropped)`. The aggregate
    /// counters stay exact — a release that removes the chunk
    /// decrements them in the same call.
    pub fn release_counted(&self, node: NodeId, id: ChunkId, n: u64) -> (u64, bool, bool) {
        let Some(&slot) = self.slot_of.get(&node) else {
            return (0, false, false);
        };
        let (freed, removed, dropped) = self.shards[slot].lock().release_n(id, n);
        self.apply_delta(-(freed as i64), -(removed as i64));
        (freed, removed, dropped)
    }

    /// Dedup reference count of `id` at `node` (`None` if either is
    /// absent).
    pub fn refcount(&self, node: NodeId, id: ChunkId) -> Option<u64> {
        let &slot = self.slot_of.get(&node)?;
        self.shards[slot].lock().refcount(id)
    }

    /// Store a whole batch of chunks at `node` under one shard
    /// acquisition and one counter update (the write-side twin of the
    /// batched fetch path). Returns `false` if `node` hosts no provider.
    pub fn put_batch<I>(&self, node: NodeId, items: I) -> bool
    where
        I: IntoIterator<Item = (ChunkId, Payload)>,
    {
        let Some(&slot) = self.slot_of.get(&node) else {
            return false;
        };
        // One barrier for the whole batch — and under group commit, one
        // shared with every other shard-mate batch in flight.
        let (bytes, new_chunks) = self.committed(slot, |shard| {
            let (mut bytes, mut new_chunks) = (0i64, 0i64);
            for (id, data) in items {
                let (delta, is_new) = shard.put(id, data);
                bytes += delta;
                new_chunks += is_new as i64;
            }
            ((bytes, new_chunks), true)
        });
        self.apply_delta(bytes, new_chunks);
        true
    }

    /// Total payload bytes stored across all providers (lock-free; shared
    /// chunks are stored once, so snapshots that share content do not
    /// multiply it).
    pub fn total_stored_bytes(&self) -> u64 {
        self.stored_bytes.load(Ordering::Relaxed)
    }

    /// Total chunks stored across all providers (lock-free).
    pub fn total_chunks(&self) -> usize {
        self.chunks.load(Ordering::Relaxed) as usize
    }

    /// Per-provider stored bytes, in topology order (balance
    /// diagnostics).
    pub fn loads(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.lock().stored_bytes())
            .collect()
    }

    /// The provider nodes, in topology order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Drop all simulated page caches (ablations).
    pub fn drop_caches(&self) {
        for s in &self.shards {
            s.lock().drop_caches();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn put_get_roundtrip() {
        let mut p = Provider::new();
        p.put(ChunkId(1), Payload::synth(7, 0, 100));
        let (data, hot) = p.get(ChunkId(1)).unwrap();
        assert!(data.content_eq(&Payload::synth(7, 0, 100)));
        assert!(hot, "fresh writes are page-cache hot");
        assert_eq!(p.stored_bytes(), 100);
    }

    #[test]
    fn missing_chunk_is_none() {
        let mut p = Provider::new();
        assert!(p.get(ChunkId(9)).is_none());
    }

    #[test]
    fn cold_read_then_hot() {
        let mut p = Provider::new();
        p.put(ChunkId(1), Payload::zeros(10));
        p.drop_caches();
        let (_, hot1) = p.get(ChunkId(1)).unwrap();
        assert!(!hot1, "first read after cache drop is cold");
        let (_, hot2) = p.get(ChunkId(1)).unwrap();
        assert!(hot2, "second read is hot");
    }

    #[test]
    fn idempotent_put_does_not_double_count() {
        let mut p = Provider::new();
        assert_eq!(p.put(ChunkId(1), Payload::zeros(100)), (100, true));
        assert_eq!(p.put(ChunkId(1), Payload::zeros(100)), (0, false));
        assert_eq!(p.stored_bytes(), 100);
        assert_eq!(p.chunk_count(), 1);
    }

    #[test]
    fn counters_stay_truthful_on_length_changing_reput() {
        // Chunk ids never carry different data in the protocol, but the
        // counters must not silently drift if that assumption is ever
        // broken: a length-changing re-put and a zero-length chunk both
        // keep aggregates equal to the per-shard truth.
        let store = ProviderStore::new(&[NodeId(0)]);
        store.put(NodeId(0), ChunkId(1), Payload::zeros(100));
        store.put(NodeId(0), ChunkId(1), Payload::zeros(50));
        assert_eq!(store.total_stored_bytes(), 50);
        assert_eq!(store.loads(), vec![50]);
        assert_eq!(store.total_chunks(), 1);
        store.put(NodeId(0), ChunkId(2), Payload::zeros(0));
        assert_eq!(store.total_chunks(), 2, "empty chunks are still chunks");
    }

    #[test]
    fn retain_release_lifecycle() {
        let mut p = Provider::new();
        p.put(ChunkId(1), Payload::zeros(100));
        assert_eq!(p.refcount(ChunkId(1)), Some(1));
        assert!(p.retain(ChunkId(1)));
        assert_eq!(p.refcount(ChunkId(1)), Some(2));
        assert_eq!(p.release(ChunkId(1)), (0, false, true));
        // Final release frees the chunk.
        assert_eq!(p.release(ChunkId(1)), (100, true, true));
        assert!(p.get(ChunkId(1)).is_none());
        assert_eq!(p.stored_bytes(), 0);
        // Double release after removal: no-op, never underflows.
        assert_eq!(p.release(ChunkId(1)), (0, false, false));
        assert_eq!(p.refcount(ChunkId(1)), None);
        // Retaining an absent chunk fails cleanly.
        assert!(!p.retain(ChunkId(1)));
    }

    #[test]
    fn store_release_maintains_aggregates() {
        let store = ProviderStore::new(&[NodeId(0), NodeId(1)]);
        store.put(NodeId(0), ChunkId(1), Payload::zeros(64));
        store.put(NodeId(1), ChunkId(1), Payload::zeros(64)); // replica
        assert!(store.retain(NodeId(0), ChunkId(1)));
        assert_eq!(store.refcount(NodeId(0), ChunkId(1)), Some(2));
        // Release down to zero on node 0 only.
        assert!(store.release(NodeId(0), ChunkId(1)));
        assert!(store.release(NodeId(0), ChunkId(1)));
        assert!(!store.release(NodeId(0), ChunkId(1)), "no underflow");
        assert_eq!(store.total_stored_bytes(), 64, "replica on 1 remains");
        assert_eq!(store.total_chunks(), 1);
        assert_eq!(store.loads(), vec![0, 64]);
        // Unknown node is a clean no-op.
        assert!(!store.retain(NodeId(9), ChunkId(1)));
        assert!(!store.release(NodeId(9), ChunkId(1)));
    }

    #[test]
    fn store_addresses_by_node_and_tracks_totals() {
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        let store = ProviderStore::new(&nodes);
        assert_eq!(store.len(), 4);
        assert!(store.contains(NodeId(2)));
        assert!(!store.contains(NodeId(9)));
        assert!(store.put(NodeId(1), ChunkId(1), Payload::zeros(64)));
        assert!(store.put(NodeId(3), ChunkId(2), Payload::zeros(36)));
        // Idempotent replica retry does not double count.
        assert!(store.put(NodeId(1), ChunkId(1), Payload::zeros(64)));
        assert!(!store.put(NodeId(9), ChunkId(3), Payload::zeros(8)));
        assert_eq!(store.total_stored_bytes(), 100);
        assert_eq!(store.total_chunks(), 2);
        assert_eq!(store.loads(), vec![0, 64, 0, 36]);
        let (data, _) = store.lock(NodeId(1)).unwrap().get(ChunkId(1)).unwrap();
        assert_eq!(data.len(), 64);
    }

    #[test]
    fn distinct_provider_shards_do_not_contend() {
        // Two threads each take and hold a different provider's shard at
        // the same time; a shared store lock would deadlock this rendezvous
        // (both threads must be inside their critical section concurrently
        // before either leaves).
        let store = Arc::new(ProviderStore::new(&[NodeId(0), NodeId(1)]));
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let threads: Vec<_> = [NodeId(0), NodeId(1)]
            .into_iter()
            .map(|node| {
                let store = Arc::clone(&store);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut shard = store.lock(node).unwrap();
                    // Rendezvous *while holding* the shard: only possible
                    // if the two locks are independent.
                    barrier.wait();
                    shard.put(ChunkId(node.0 as u64 + 1), Payload::zeros(10));
                })
            })
            .collect();
        for t in threads {
            t.join().expect("no deadlock between distinct shards");
        }
        assert_eq!(store.loads(), vec![10, 10]);
    }

    #[test]
    fn totals_are_lock_free_under_a_held_shard() {
        // Aggregate metrics must not take shard locks: read them while a
        // shard guard is held.
        let store = ProviderStore::new(&[NodeId(0), NodeId(1)]);
        store.put(NodeId(1), ChunkId(1), Payload::zeros(50));
        let _held = store.lock(NodeId(0)).unwrap();
        assert_eq!(store.total_stored_bytes(), 50);
        assert_eq!(store.total_chunks(), 1);
    }
}
