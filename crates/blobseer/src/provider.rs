//! Chunk providers: the per-node stores that together form the common
//! storage pool aggregated from compute-node local disks (§3.1.1).
//!
//! A provider is a passive state machine; the client charges its fabric
//! costs (transfer to/from the provider node, disk read/write at the
//! provider) around these calls. The `hot` set models the provider host's
//! page cache: a chunk read once is served from memory afterwards.

use crate::api::ChunkId;
use bff_data::Payload;
use std::collections::{HashMap, HashSet};

/// One provider's chunk store.
#[derive(Debug, Default)]
pub struct Provider {
    chunks: HashMap<ChunkId, Payload>,
    hot: HashSet<ChunkId>,
    stored_bytes: u64,
}

impl Provider {
    /// Empty provider.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store a chunk. Chunk ids are globally unique, so an insert never
    /// replaces different data; re-putting the same id (replica retry) is
    /// idempotent.
    pub fn put(&mut self, id: ChunkId, data: Payload) {
        if let Some(prev) = self.chunks.insert(id, data) {
            // Idempotent re-put: undo double counting.
            self.stored_bytes -= prev.len();
        }
        let len = self.chunks[&id].len();
        self.stored_bytes += len;
        // Freshly written data sits in the page cache.
        self.hot.insert(id);
    }

    /// Fetch a chunk, reporting whether it was already cached in memory
    /// (`true`) or needs a disk read charged (`false`).
    pub fn get(&mut self, id: ChunkId) -> Option<(Payload, bool)> {
        let data = self.chunks.get(&id)?.clone();
        let was_hot = !self.hot.insert(id);
        Some((data, was_hot))
    }

    /// Whether the chunk is present.
    pub fn has(&self, id: ChunkId) -> bool {
        self.chunks.contains_key(&id)
    }

    /// Total payload bytes stored (the storage-consumption metric behind
    /// the paper's "storage and bandwidth usage reduced by as much as
    /// 90%" claim).
    pub fn stored_bytes(&self) -> u64 {
        self.stored_bytes
    }

    /// Number of chunks stored.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Drop the page-cache model state (e.g. to simulate memory pressure
    /// in ablations).
    pub fn drop_caches(&mut self) {
        self.hot.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut p = Provider::new();
        p.put(ChunkId(1), Payload::synth(7, 0, 100));
        let (data, hot) = p.get(ChunkId(1)).unwrap();
        assert!(data.content_eq(&Payload::synth(7, 0, 100)));
        assert!(hot, "fresh writes are page-cache hot");
        assert_eq!(p.stored_bytes(), 100);
    }

    #[test]
    fn missing_chunk_is_none() {
        let mut p = Provider::new();
        assert!(p.get(ChunkId(9)).is_none());
    }

    #[test]
    fn cold_read_then_hot() {
        let mut p = Provider::new();
        p.put(ChunkId(1), Payload::zeros(10));
        p.drop_caches();
        let (_, hot1) = p.get(ChunkId(1)).unwrap();
        assert!(!hot1, "first read after cache drop is cold");
        let (_, hot2) = p.get(ChunkId(1)).unwrap();
        assert!(hot2, "second read is hot");
    }

    #[test]
    fn idempotent_put_does_not_double_count() {
        let mut p = Provider::new();
        p.put(ChunkId(1), Payload::zeros(100));
        p.put(ChunkId(1), Payload::zeros(100));
        assert_eq!(p.stored_bytes(), 100);
        assert_eq!(p.chunk_count(), 1);
    }
}
