//! The cluster-level access-pattern board: the control plane of the
//! adaptive cross-VM prefetching pipeline (§3.1.3).
//!
//! Co-deployed VMs booting the same image touch nearly identical chunk
//! sequences with a skew of ~100 ms. The [`PatternBoard`] turns that
//! observation into a service: every node's shared
//! [`crate::NodeContext`] batches the first-touch chunk order of its
//! demand reads and publishes compact summaries here; a node deploying
//! the same `(blob, version)` later (or merely running behind) reads the
//! merged peer sequence back and asks
//! [`crate::Client::prefetch_chunks`] to fetch the predicted next window
//! ahead of its guest.
//!
//! Deployment-wise the board is hosted *beside the provider manager*
//! (one logical instance per service, on `topology().pmanager`): a
//! publish costs one small control RPC to that node, and the board then
//! **gossips** the update to the compute nodes along a k-ary
//! [`bff_bcast::tree`] — one tiny transfer per tree edge — so reads of
//! the local replica are free. In this model the replica state itself is
//! shared memory; the gossip charges make the fabric see the
//! dissemination traffic and latency that a real deployment would pay.
//!
//! The board stores the *union* of all publishers' first-touch orders,
//! deduplicated in arrival order. That is deliberately coarse: the point
//! is not to replay one peer's exact trace but to know, cheaply, which
//! chunks the cohort touches and roughly in which order — which is also
//! why a bounded sequence ([`BOARD_SEQ_CAP`]) suffices.

use crate::api::{BlobId, Version};
use crate::lockstat::{probed_read, probed_write, LockContention, LockProbe};
use bff_data::{FastMap, FastSet};
use bff_net::{Fabric, NodeId, Transfer};
use parking_lot::RwLock;
use std::sync::Arc;

/// Cap on the merged access sequence kept per `(blob, version)`. A boot
/// touches a few thousand chunks; the cap only guards against
/// pathological full-image scans flooding the board.
pub const BOARD_SEQ_CAP: usize = 1 << 14;

/// Cap on `(blob, version)` patterns tracked at once. Inserting beyond
/// it evicts the least-recently-merged pattern — a cohort that stopped
/// publishing long ago has either converged (its nodes hold gossiped
/// replicas and local caches) or dissolved; either way its board slot
/// is reclaimable. Bounds the board's memory under unbounded snapshot
/// churn.
pub const BOARD_PATTERN_CAP: usize = 1024;

/// Gossip fan-out for summary dissemination (taktuk-like small arity).
pub const GOSSIP_ARITY: usize = 2;

#[derive(Debug, Default)]
struct BoardEntry {
    /// Merged first-touch sequence (arrival order across publishers).
    seq: Arc<Vec<u64>>,
    /// Membership set of `seq` (dedup across publishers).
    members: FastSet<u64>,
    /// Distinct nodes that have published for this snapshot.
    publishers: FastSet<NodeId>,
    /// Distinct publishers per chunk index (saturating). Each node
    /// publishes each index at most once (its tracker's `published`
    /// prefix guarantees it), so counting batches counts publishers —
    /// the confidence signal behind
    /// [`PatternBoard::sequence_with_confidence`].
    confirms: FastMap<u64, u32>,
    /// Publish batches merged so far.
    publishes: u64,
    /// Stamp of the last merge (LRU eviction under
    /// [`BOARD_PATTERN_CAP`]).
    last_merge: u64,
}

/// A peer access sequence with its cohort-confirmation mask (`None` =
/// the confidence filter is inactive), as returned by
/// [`PatternBoard::sequence_with_confidence`].
pub type ConfidentSequence = (Arc<Vec<u64>>, Option<Vec<bool>>);

/// The board state (one logical instance per deployed service; see
/// module docs).
#[derive(Debug, Default)]
pub struct PatternBoard {
    entries: FastMap<(BlobId, Version), BoardEntry>,
    tick: u64,
}

impl PatternBoard {
    /// Merge `publisher`'s first-touch `batch` into the sequence for
    /// `key`. Returns how many indices were new to the board (0 means
    /// the cohort already knew everything in the batch). Every batch
    /// index also confirms the chunk for `publisher` — the per-chunk
    /// distinct-publisher counts behind the prefetch confidence filter.
    pub fn merge(&mut self, key: (BlobId, Version), publisher: NodeId, batch: &[u64]) -> usize {
        if self.entries.len() >= BOARD_PATTERN_CAP && !self.entries.contains_key(&key) {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_merge)
                .map(|(k, _)| *k)
            {
                self.entries.remove(&victim);
            }
        }
        self.tick += 1;
        let tick = self.tick;
        let entry = self.entries.entry(key).or_default();
        entry.last_merge = tick;
        entry.publishes += 1;
        entry.publishers.insert(publisher);
        let mut appended = 0;
        for &idx in batch {
            if entry.members.len() >= BOARD_SEQ_CAP && !entry.members.contains(&idx) {
                continue; // the sequence is full; known chunks still confirm
            }
            if entry.members.insert(idx) {
                Arc::make_mut(&mut entry.seq).push(idx);
                appended += 1;
            }
            let c = entry.confirms.entry(idx).or_insert(0);
            *c = c.saturating_add(1);
        }
        appended
    }

    /// The subset of `batch` still worth publishing to the board: the
    /// indices the board does not know, plus known indices whose
    /// distinct-publisher count has not yet reached `min_publishers`
    /// (an extra confirmation strengthens the confidence signal).
    /// Publishers consult their gossiped *local replica* with this
    /// before paying the publish RPC, so once the pattern has both
    /// converged *and* been cohort-confirmed the control plane goes
    /// quiet. `min_publishers ≤ 1` reduces to pure novelty filtering.
    pub fn novel_of(
        &self,
        key: (BlobId, Version),
        batch: &[u64],
        min_publishers: usize,
    ) -> Vec<u64> {
        match self.entries.get(&key) {
            Some(e) => batch
                .iter()
                .copied()
                .filter(|idx| {
                    !e.members.contains(idx)
                        || (e.confirms.get(idx).copied().unwrap_or(0) as usize) < min_publishers
                })
                .collect(),
            None => batch.to_vec(),
        }
    }

    /// The merged peer sequence for `key`, cheaply shareable (readers
    /// hold the `Arc` while the prefetcher walks it; a concurrent merge
    /// copies-on-write).
    pub fn sequence(&self, key: (BlobId, Version)) -> Option<Arc<Vec<u64>>> {
        self.entries.get(&key).map(|e| Arc::clone(&e.seq))
    }

    /// The merged peer sequence plus its confidence mask: `mask[i]` is
    /// whether `seq[i]` was reported by at least `min_publishers`
    /// distinct nodes. The mask is `None` — no filtering — while the
    /// filter is off (`min_publishers ≤ 1`) or the board has seen fewer
    /// than `min_publishers` publishers for this snapshot: a lone seed
    /// VM's pattern is better than nothing, but the moment a cohort
    /// exists, chunks only one member touched (private divergence) are
    /// not worth read-ahead.
    pub fn sequence_with_confidence(
        &self,
        key: (BlobId, Version),
        min_publishers: usize,
    ) -> Option<ConfidentSequence> {
        let e = self.entries.get(&key)?;
        let seq = Arc::clone(&e.seq);
        if min_publishers <= 1 || e.publishers.len() < min_publishers {
            return Some((seq, None));
        }
        let mask: Vec<bool> = seq
            .iter()
            .map(|idx| e.confirms.get(idx).copied().unwrap_or(0) as usize >= min_publishers)
            .collect();
        Some((seq, Some(mask)))
    }

    /// Distinct nodes that have published for `key` so far.
    pub fn publisher_count(&self, key: (BlobId, Version)) -> usize {
        self.entries.get(&key).map_or(0, |e| e.publishers.len())
    }

    /// Drop the pattern for `key` (snapshot-delete eviction: a deleted
    /// snapshot can never be deployed again, so its board slot and
    /// gossiped replicas are garbage).
    pub fn drop_pattern(&mut self, key: (BlobId, Version)) {
        self.entries.remove(&key);
    }

    /// Length of the merged sequence for `key` (0 when absent) — the
    /// cheap pre-check the prefetcher uses before cloning the sequence.
    pub fn sequence_len(&self, key: (BlobId, Version)) -> usize {
        self.entries.get(&key).map_or(0, |e| e.seq.len())
    }

    /// Publish batches merged for `key` so far (experiment diagnostics).
    pub fn publishes(&self, key: (BlobId, Version)) -> u64 {
        self.entries.get(&key).map_or(0, |e| e.publishes)
    }

    /// `(blob, version)` patterns currently tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the board tracks no patterns.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Shards in a [`BoardService`]. Keys hash across shards, so publishes
/// and polls for distinct snapshots never touch the same lock.
pub const BOARD_SHARDS: usize = 16;

/// The board behind its own locking: sharded `RwLock`s over
/// [`PatternBoard`] state.
///
/// The board replica is the hottest shared structure in the serving
/// path: every VM polls [`BoardService::sequence_len`] before every
/// guest compute burst ([`crate::Client::has_prefetch_work`]), and every
/// node publishes batches concurrently. Behind a single `Mutex` (the
/// pre-wall-clock design) those polls serialize the whole cohort. Here
/// reads (`sequence_len`, `novel_of`, `sequence_with_confidence`) take a
/// shard read lock and run concurrently; writes (`merge`,
/// `drop_pattern`) exclude only their own shard. Sequence payloads are
/// `Arc` copy-on-write, so read guards are held only for the map lookup,
/// never while a caller walks the sequence.
///
/// With `coarse` set the service emulates the old design — every key on
/// shard 0, every access exclusive — which is how `load_sweep` measures
/// what the sharding is worth. All acquisitions are counted through a
/// [`LockProbe`].
#[derive(Debug)]
pub struct BoardService {
    shards: Vec<RwLock<PatternBoard>>,
    coarse: bool,
    probe: LockProbe,
}

impl BoardService {
    /// A fresh board; `coarse` emulates the single-mutex design.
    pub fn new(coarse: bool) -> Self {
        Self {
            shards: (0..BOARD_SHARDS).map(|_| RwLock::default()).collect(),
            coarse,
            probe: LockProbe::default(),
        }
    }

    fn shard_of(&self, key: (BlobId, Version)) -> usize {
        if self.coarse {
            return 0;
        }
        let h = (key.0 .0 ^ key.1 .0).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize % self.shards.len()
    }

    fn with_read<R>(&self, key: (BlobId, Version), f: impl FnOnce(&PatternBoard) -> R) -> R {
        let shard = &self.shards[self.shard_of(key)];
        if self.coarse {
            // The old Mutex was exclusive even for reads.
            f(&probed_write(&self.probe, shard))
        } else {
            f(&probed_read(&self.probe, shard))
        }
    }

    fn with_write<R>(&self, key: (BlobId, Version), f: impl FnOnce(&mut PatternBoard) -> R) -> R {
        f(&mut probed_write(
            &self.probe,
            &self.shards[self.shard_of(key)],
        ))
    }

    /// See [`PatternBoard::merge`].
    pub fn merge(&self, key: (BlobId, Version), publisher: NodeId, batch: &[u64]) -> usize {
        self.with_write(key, |b| b.merge(key, publisher, batch))
    }

    /// See [`PatternBoard::novel_of`].
    pub fn novel_of(
        &self,
        key: (BlobId, Version),
        batch: &[u64],
        min_publishers: usize,
    ) -> Vec<u64> {
        self.with_read(key, |b| b.novel_of(key, batch, min_publishers))
    }

    /// See [`PatternBoard::sequence`].
    pub fn sequence(&self, key: (BlobId, Version)) -> Option<Arc<Vec<u64>>> {
        self.with_read(key, |b| b.sequence(key))
    }

    /// See [`PatternBoard::sequence_with_confidence`].
    pub fn sequence_with_confidence(
        &self,
        key: (BlobId, Version),
        min_publishers: usize,
    ) -> Option<ConfidentSequence> {
        self.with_read(key, |b| b.sequence_with_confidence(key, min_publishers))
    }

    /// See [`PatternBoard::sequence_len`].
    pub fn sequence_len(&self, key: (BlobId, Version)) -> usize {
        self.with_read(key, |b| b.sequence_len(key))
    }

    /// See [`PatternBoard::publisher_count`].
    pub fn publisher_count(&self, key: (BlobId, Version)) -> usize {
        self.with_read(key, |b| b.publisher_count(key))
    }

    /// See [`PatternBoard::publishes`].
    pub fn publishes(&self, key: (BlobId, Version)) -> u64 {
        self.with_read(key, |b| b.publishes(key))
    }

    /// See [`PatternBoard::drop_pattern`].
    pub fn drop_pattern(&self, key: (BlobId, Version)) {
        self.with_write(key, |b| b.drop_pattern(key));
    }

    /// Patterns tracked across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| probed_read(&self.probe, s).len())
            .sum()
    }

    /// Whether no shard tracks any pattern.
    pub fn is_empty(&self) -> bool {
        self.shards
            .iter()
            .all(|s| probed_read(&self.probe, s).is_empty())
    }

    /// Contention counters of the board locks.
    pub fn contention(&self) -> LockContention {
        self.probe.snapshot()
    }
}

/// Charge the fabric for gossiping a `summary_bytes`-sized board update
/// from `host` (the provider-manager node) to `targets` along the k-ary
/// broadcast tree. Down or unreachable nodes are skipped — gossip is
/// best-effort; a node that missed an update simply prefetches a little
/// later. The publisher itself should be excluded by the caller (it
/// already holds its own accesses).
pub fn gossip_charge(
    fabric: &Arc<dyn Fabric>,
    host: NodeId,
    targets: &[NodeId],
    summary_bytes: u64,
) {
    // One small one-way message per tree edge, all in flight at once
    // (summaries are tiny; relays forward without store-and-forward
    // delays, so the whole round costs ~one link latency of virtual
    // time). Edges touching dead nodes are skipped — gossip is
    // best-effort; a node that missed an update prefetches a little
    // later.
    let xfers: Vec<Transfer> = bff_bcast::tree::tree_edges(host, targets, GOSSIP_ARITY)
        .into_iter()
        .filter(|&(p, c)| !fabric.is_down(p) && !fabric.is_down(c))
        .map(|(parent, child)| Transfer {
            src: parent,
            dst: child,
            bytes: summary_bytes,
        })
        .collect();
    let _ = fabric.transfer_all(&xfers);
}

#[cfg(test)]
mod tests {
    use super::*;
    use bff_net::LocalFabric;

    const KEY: (BlobId, Version) = (BlobId(1), Version(1));

    #[test]
    fn merge_unions_in_arrival_order() {
        let mut b = PatternBoard::default();
        assert_eq!(b.merge(KEY, NodeId(0), &[3, 1, 2]), 3);
        // A second publisher with overlap appends only the novel tail.
        assert_eq!(b.merge(KEY, NodeId(1), &[1, 2, 9]), 1);
        assert_eq!(*b.sequence(KEY).unwrap(), vec![3, 1, 2, 9]);
        assert_eq!(b.sequence_len(KEY), 4);
        assert_eq!(b.publishes(KEY), 2);
        assert_eq!(b.publisher_count(KEY), 2);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn confidence_mask_confirms_cohort_chunks_only() {
        let mut b = PatternBoard::default();
        b.merge(KEY, NodeId(0), &[1, 2, 3]);
        // One publisher so far: the filter stays off (mask is None).
        let (seq, mask) = b.sequence_with_confidence(KEY, 2).unwrap();
        assert_eq!(*seq, vec![1, 2, 3]);
        assert!(mask.is_none(), "a lone seed's pattern is unfiltered");
        // A second publisher confirms 2 and 3 and adds a private 4.
        b.merge(KEY, NodeId(1), &[2, 3, 4]);
        let (seq, mask) = b.sequence_with_confidence(KEY, 2).unwrap();
        assert_eq!(*seq, vec![1, 2, 3, 4]);
        assert_eq!(mask.unwrap(), vec![false, true, true, false]);
        // min_publishers 1 disables the filter outright.
        let (_, mask) = b.sequence_with_confidence(KEY, 1).unwrap();
        assert!(mask.is_none());
    }

    #[test]
    fn novelty_filter_admits_confirmations_up_to_threshold() {
        let mut b = PatternBoard::default();
        b.merge(KEY, NodeId(0), &[1, 2]);
        // With the confidence filter on, a second publisher's overlap is
        // still worth publishing (it confirms), a third's is not.
        assert_eq!(b.novel_of(KEY, &[1, 2, 5], 2), vec![1, 2, 5]);
        b.merge(KEY, NodeId(1), &[1, 2, 5]);
        assert_eq!(b.novel_of(KEY, &[1, 2], 2), Vec::<u64>::new());
        // Pure novelty mode drops known indices after one publisher.
        assert_eq!(b.novel_of(KEY, &[1, 2, 7], 1), vec![7]);
    }

    #[test]
    fn drop_pattern_forgets_the_snapshot() {
        let mut b = PatternBoard::default();
        b.merge(KEY, NodeId(0), &[1, 2]);
        b.drop_pattern(KEY);
        assert!(b.sequence(KEY).is_none());
        assert_eq!(b.publisher_count(KEY), 0);
        assert!(b.is_empty());
    }

    #[test]
    fn absent_key_reads_empty() {
        let b = PatternBoard::default();
        assert!(b.sequence(KEY).is_none());
        assert_eq!(b.sequence_len(KEY), 0);
        assert!(b.is_empty());
    }

    #[test]
    fn sequence_is_bounded() {
        let mut b = PatternBoard::default();
        let big: Vec<u64> = (0..(BOARD_SEQ_CAP as u64 + 100)).collect();
        b.merge(KEY, NodeId(0), &big);
        assert_eq!(b.sequence_len(KEY), BOARD_SEQ_CAP);
        // Further novel indices are dropped, not wrapped.
        b.merge(KEY, NodeId(0), &[u64::MAX]);
        assert_eq!(b.sequence_len(KEY), BOARD_SEQ_CAP);
    }

    #[test]
    fn pattern_count_is_bounded_lru() {
        let mut b = PatternBoard::default();
        for v in 1..=(BOARD_PATTERN_CAP as u64 + 50) {
            b.merge((BlobId(1), Version(v)), NodeId(0), &[1, 2, 3]);
        }
        assert_eq!(b.len(), BOARD_PATTERN_CAP);
        // The newest pattern is present, the oldest was evicted.
        assert!(b
            .sequence((BlobId(1), Version(BOARD_PATTERN_CAP as u64 + 50)))
            .is_some());
        assert!(b.sequence((BlobId(1), Version(1))).is_none());
    }

    #[test]
    fn readers_hold_snapshots_across_merges() {
        let mut b = PatternBoard::default();
        b.merge(KEY, NodeId(0), &[1, 2]);
        let snap = b.sequence(KEY).unwrap();
        b.merge(KEY, NodeId(1), &[3]);
        assert_eq!(*snap, vec![1, 2], "held snapshot is immutable");
        assert_eq!(*b.sequence(KEY).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn board_service_mirrors_the_plain_board() {
        for coarse in [false, true] {
            let s = BoardService::new(coarse);
            assert!(s.is_empty(), "coarse={coarse}");
            assert_eq!(s.merge(KEY, NodeId(0), &[3, 1, 2]), 3);
            assert_eq!(s.merge(KEY, NodeId(1), &[1, 2, 9]), 1);
            assert_eq!(*s.sequence(KEY).unwrap(), vec![3, 1, 2, 9]);
            assert_eq!(s.sequence_len(KEY), 4);
            assert_eq!(s.publishes(KEY), 2);
            assert_eq!(s.publisher_count(KEY), 2);
            assert_eq!(s.novel_of(KEY, &[1, 2, 7], 1), vec![7]);
            let (seq, mask) = s.sequence_with_confidence(KEY, 2).unwrap();
            assert_eq!(seq.len(), 4);
            assert_eq!(mask.unwrap(), vec![false, true, true, false]);
            assert_eq!(s.len(), 1);
            s.drop_pattern(KEY);
            assert!(s.is_empty(), "coarse={coarse}");
            let c = s.contention();
            assert!(c.acquires > 0, "every access is counted");
        }
    }

    #[test]
    fn board_service_spreads_keys_over_shards() {
        let sharded = BoardService::new(false);
        let coarse = BoardService::new(true);
        for v in 1..=64u64 {
            let key = (BlobId(7), Version(v));
            sharded.merge(key, NodeId(0), &[v]);
            coarse.merge(key, NodeId(0), &[v]);
        }
        assert_eq!(sharded.len(), 64);
        assert_eq!(coarse.len(), 64);
        let spread = sharded
            .shards
            .iter()
            .filter(|s| !s.read().is_empty())
            .count();
        assert!(spread > 1, "64 keys must land on more than one shard");
        let packed = coarse
            .shards
            .iter()
            .filter(|s| !s.read().is_empty())
            .count();
        assert_eq!(packed, 1, "coarse mode pins everything to shard 0");
    }

    #[test]
    fn gossip_charges_one_message_per_edge() {
        let fabric = LocalFabric::new(8);
        let targets: Vec<NodeId> = (1..8).map(NodeId).collect();
        gossip_charge(
            &(Arc::clone(&fabric) as Arc<dyn Fabric>),
            NodeId(0),
            &targets,
            100,
        );
        // 7 edges x 100 bytes, one-way.
        assert_eq!(fabric.stats().total_network_bytes(), 700);
        // A dead relay does not abort the rest of the gossip.
        fabric.stats().reset();
        fabric.fail_node(NodeId(1));
        gossip_charge(
            &(Arc::clone(&fabric) as Arc<dyn Fabric>),
            NodeId(0),
            &targets,
            100,
        );
        assert!(fabric.stats().total_network_bytes() > 0);
    }
}
