//! Server-side dispatch: the passive state machines behind the typed
//! message boundary.
//!
//! A [`ServerState`] owns everything that lives on the *server* side of
//! the protocol — version manager, provider manager, metadata shards,
//! chunk providers, the pattern board and the cluster dedup index — and
//! answers [`bff_wire::Req`] values with [`bff_wire::Resp`] values.
//! Every request maps to exactly the lock-acquisition pattern the direct
//! in-process path uses: a batch request takes its state machine's lock
//! once for the whole batch, a per-item request once per message. That
//! keeps the `coarse_*` contention ablations meaningful regardless of
//! which transport carried the frame.
//!
//! [`ServerState::handle_frame`] is the `bff_net::FrameHandler` entry
//! point: decode → dispatch → encode, never panicking on input. Both the
//! in-process transports and the standalone `blob_server` processes (see
//! the `bff-bench` crate) serve frames through it.

use crate::api::{BlobConfig, BlobTopology};
use crate::board::BoardService;
use crate::cluster::ClusterIndex;
use crate::durable::{
    CommitPolicy, DurabilityCounters, DurabilityStats, GroupCommit, Journal, JournalRecord,
    RecoveryReport,
};
use crate::lockstat::{probed_read, probed_write, LockContention, LockProbe};
use crate::meta::MetaPartition;
use crate::pmanager::{PManager, Placement};
use crate::provider::ProviderStore;
use crate::vmanager::VManager;
use bff_data::FastSet;
use bff_net::transport::{RouteKey, WireError};
use bff_wire::msg::{
    BoardReq, BoardResp, ClusterReq, ClusterResp, DeleteOutcome, MetaReq, MetaResp, PmReq, PmResp,
    ProviderReq, ProviderResp, Req, Resp, VersionInfo, VmReq, VmResp,
};
use bff_wire::types::BlobError;
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// The manager journal plus its commit-ack discipline: appends happen
/// under the state-machine lock (journal order = serialization order),
/// the fsync barrier is crossed *after* that lock is released, so
/// concurrent mutations interleave appends and — under group commit —
/// share one `sync_data`.
struct JournalHandle {
    journal: Mutex<Journal>,
    /// Leader/follower fsync batching; `None` runs the per-ack
    /// baseline (one fsync per barrier, under the journal lock only).
    gc: Option<Arc<GroupCommit>>,
    stats: Arc<DurabilityStats>,
}

impl JournalHandle {
    /// Issue the sync ticket for a record just appended (call while
    /// still holding the state-machine lock that ordered the append).
    fn ticket(&self) -> u64 {
        self.gc.as_ref().map_or(0, |gc| gc.ticket())
    }

    /// Cross the fsync-before-ack barrier for `ticket`. Call with no
    /// state-machine lock held.
    fn commit(&self, ticket: u64) {
        match &self.gc {
            Some(gc) => gc
                .commit(ticket, || {
                    // Claim under the journal lock, sync_data outside it.
                    let handle = self.journal.lock().sync_handle()?;
                    if let Some(f) = handle {
                        f.sync_data()?;
                    }
                    Ok(())
                })
                .expect("journal group sync"),
            None => {
                let started = Instant::now();
                if self.journal.lock().sync().expect("journal sync") {
                    self.stats.note_fsync();
                    self.stats.note_ack(started.elapsed());
                }
            }
        }
    }
}

/// The server half of a deployment: every passive state machine, guarded
/// exactly as in the historical in-process layout.
pub struct ServerState {
    pub(crate) vmanager: Mutex<VManager>,
    pub(crate) pmanager: Mutex<PManager>,
    pub(crate) meta: Vec<Mutex<MetaPartition>>,
    /// Sharded one lock per provider: data-plane requests on distinct
    /// providers never contend (see [`ProviderStore`]).
    pub(crate) providers: ProviderStore,
    /// The cluster access-pattern board (see [`crate::board`]). The
    /// service does its own sharded read/write locking.
    pub(crate) pattern_board: BoardService,
    /// The cluster-wide content-addressed dedup index. Read-mostly after
    /// deployment convergence, so a read/write lock; hot-path
    /// acquisitions go through [`ServerState::cluster_read`] /
    /// [`ServerState::cluster_write`] and are contention-counted.
    pub(crate) cluster_index: RwLock<ClusterIndex>,
    cluster_probe: LockProbe,
    /// The mutation journal, present only on durable deployments (see
    /// [`ServerState::recover`]). A leaf lock: always acquired *while
    /// holding* the state-machine lock whose mutation is being
    /// journaled, so journal order equals serialization order. The sync
    /// barrier, by contrast, is crossed after that lock drops.
    journal: Option<JournalHandle>,
    /// Deployment-wide durability counters (journal + provider
    /// coordinators share one instance; all-zero when volatile).
    durability: Arc<DurabilityStats>,
}

impl ServerState {
    /// Build the server state for a deployment (in-memory, the
    /// historical default).
    pub fn new(cfg: &BlobConfig, topo: &BlobTopology, placement: Placement) -> Self {
        Self::assemble(
            cfg,
            topo,
            placement,
            ProviderStore::new(&topo.providers),
            None,
            Arc::new(DurabilityStats::default()),
        )
    }

    fn assemble(
        cfg: &BlobConfig,
        topo: &BlobTopology,
        placement: Placement,
        providers: ProviderStore,
        journal: Option<JournalHandle>,
        durability: Arc<DurabilityStats>,
    ) -> Self {
        assert!(!topo.providers.is_empty(), "need at least one provider");
        assert!(
            !topo.metadata.is_empty(),
            "need at least one metadata server"
        );
        let cluster_cap = if cfg.cluster_dedup && cfg.dedup {
            cfg.cluster_index_chunks
        } else {
            0
        };
        Self {
            vmanager: Mutex::new(VManager::new()),
            pmanager: Mutex::new(PManager::new(topo.providers.clone(), placement)),
            meta: topo
                .metadata
                .iter()
                .map(|_| Mutex::new(MetaPartition::new()))
                .collect(),
            providers,
            pattern_board: BoardService::new(cfg.coarse_board_lock),
            cluster_index: RwLock::new(ClusterIndex::new(cluster_cap)),
            cluster_probe: LockProbe::default(),
            journal,
            durability,
        }
    }

    /// Build a durable server state rooted at `data_dir`: disk-backed
    /// providers (one directory per provider node) plus the mutation
    /// journal, both replayed before the state is handed out.
    ///
    /// Soft state — the pattern board and the cluster dedup index — is
    /// deliberately *not* journaled: both are self-healing caches
    /// (stale entries are re-learned or verified against providers),
    /// and an empty board after restart only costs warmup, never
    /// correctness. Each process must own `data_dir` exclusively; two
    /// writers would corrupt each other's live appends.
    pub fn recover(
        cfg: &BlobConfig,
        topo: &BlobTopology,
        placement: Placement,
        data_dir: &Path,
    ) -> std::io::Result<(Self, RecoveryReport)> {
        let policy = CommitPolicy::from_config(cfg);
        let (providers, seg) = ProviderStore::recover(&topo.providers, data_dir, &policy)?;
        let (records, journal, journal_torn) = Journal::open(&data_dir.join("journal.log"))?;
        let handle = JournalHandle {
            journal: Mutex::new(journal),
            gc: policy.coordinator(),
            stats: Arc::clone(&policy.stats),
        };
        let state = Self::assemble(cfg, topo, placement, providers, Some(handle), policy.stats);
        let report = RecoveryReport {
            journal_records: records.len(),
            journal_torn,
            chunks: seg.chunks,
            chunk_bytes: seg.chunk_bytes,
            torn_files: seg.torn_files,
        };
        let mut vm = state.vmanager.lock();
        let mut pm = state.pmanager.lock();
        for rec in records {
            match rec {
                // Replay applies the op directly: it was journaled only
                // after succeeding, so errors here mean the record is
                // obsolete (e.g. delete of an already-deleted version
                // whose first delete was also replayed) — never fatal.
                JournalRecord::VmOp(op) => match op {
                    VmReq::CreateBlob { size, chunk_size } => {
                        let _ = vm.create_blob(size, chunk_size);
                    }
                    VmReq::CloneBlob { src, version } => {
                        let _ = vm.clone_blob(src, version);
                    }
                    VmReq::Publish { blob, base, root } => {
                        let _ = vm.publish(blob, base, root);
                    }
                    VmReq::DeleteSnapshots { blob, versions } => {
                        let _ = vm.delete_snapshots(blob, &versions);
                    }
                    _ => {}
                },
                JournalRecord::MetaNodes { shard, nodes } => {
                    if let Some(part) = state.meta.get(shard as usize) {
                        part.lock().put(nodes);
                    }
                }
                JournalRecord::KeyMark(k) => vm.ensure_key_floor(k),
                JournalRecord::ChunkMark(c) => pm.ensure_chunk_floor(c),
            }
        }
        drop(vm);
        drop(pm);
        Ok((state, report))
    }

    /// Journal a successful version-manager mutation. Call sites hold
    /// the vmanager lock, so append order equals serialization order.
    /// Fail-stop: an unjournalable mutation must not be acked. Returns
    /// the sync ticket to pass to [`ServerState::journal_commit`]
    /// *after* the vmanager lock is released — the ack is not durable
    /// until that barrier is crossed.
    fn journal_append_vm(&self, op: &VmReq) -> Option<u64> {
        let j = self.journal.as_ref()?;
        j.journal.lock().append_vm(op).expect("journal vm append");
        Some(j.ticket())
    }

    /// Cross the fsync-before-ack barrier for an appended journal
    /// record. Call with no state-machine lock held; `None` (volatile
    /// deployment, or nothing appended) is a no-op.
    fn journal_commit(&self, ticket: Option<u64>) {
        if let (Some(j), Some(ticket)) = (self.journal.as_ref(), ticket) {
            j.commit(ticket);
        }
    }

    /// Advance the durable node-key allocator mark (call under the
    /// vmanager lock); `Some` carries the barrier ticket when a new
    /// mark was appended.
    fn journal_note_key(&self, next: u64) -> Option<u64> {
        let j = self.journal.as_ref()?;
        let appended = j.journal.lock().note_key(next).expect("journal key mark");
        appended.then(|| j.ticket())
    }

    /// [`ServerState::journal_note_key`] for the chunk-id allocator
    /// (call under the pmanager lock).
    fn journal_note_chunk(&self, next: u64) -> Option<u64> {
        let j = self.journal.as_ref()?;
        let appended = j
            .journal
            .lock()
            .note_chunk(next)
            .expect("journal chunk mark");
        appended.then(|| j.ticket())
    }

    /// Point-in-time durability counters (fsync barriers, acks covered,
    /// worst ticket wait) across the journal and every provider shard.
    pub fn durability(&self) -> DurabilityCounters {
        self.durability.snapshot()
    }

    /// Shared read access to the cluster dedup index, contention-counted
    /// (the commit-probe hot path).
    pub(crate) fn cluster_read(&self) -> RwLockReadGuard<'_, ClusterIndex> {
        probed_read(&self.cluster_probe, &self.cluster_index)
    }

    /// Exclusive access to the cluster dedup index, contention-counted.
    pub(crate) fn cluster_write(&self) -> RwLockWriteGuard<'_, ClusterIndex> {
        probed_write(&self.cluster_probe, &self.cluster_index)
    }

    /// Contention counters of the cluster-index lock.
    pub fn cluster_contention(&self) -> LockContention {
        self.cluster_probe.snapshot()
    }

    /// The `bff_net::FrameHandler` entry point: decode one request
    /// frame, dispatch it, encode the reply. `route` is the listener the
    /// frame arrived on; a frame whose payload addresses a different
    /// role class is rejected as corrupt (misrouted) rather than served.
    pub fn handle_frame(&self, route: RouteKey, frame: &[u8]) -> Result<Vec<u8>, WireError> {
        let req: Req = bff_wire::decode(frame)?;
        if req.route().role() != route.role() {
            return Err(WireError::BadFrame);
        }
        let resp = self.dispatch(req)?;
        Ok(bff_wire::encode(&resp))
    }

    /// Serve one typed request against the passive state machines.
    ///
    /// Addressing errors that the direct path cannot express (a shard
    /// index beyond the deployment) are wire errors; a request for an
    /// *unknown provider node* answers exactly like the direct path's
    /// `ProviderStore` (absent chunk / rejected op), so per-chunk
    /// failover semantics survive the transport unchanged.
    pub fn dispatch(&self, req: Req) -> Result<Resp, WireError> {
        Ok(match req {
            Req::Vm(q) => Resp::Vm(self.dispatch_vm(q)),
            Req::Pm(q) => Resp::Pm(self.dispatch_pm(q)),
            Req::Meta { shard, req } => {
                let shard = shard as usize;
                if shard >= self.meta.len() {
                    return Err(WireError::BadFrame);
                }
                Resp::Meta(self.dispatch_meta(shard, req))
            }
            Req::Provider { node, req } => Resp::Provider(self.dispatch_provider(node, req)),
            Req::Board(q) => Resp::Board(self.dispatch_board(q)),
            Req::Cluster(q) => Resp::Cluster(self.dispatch_cluster(q)),
        })
    }

    fn dispatch_vm(&self, q: VmReq) -> VmResp {
        match q {
            VmReq::CreateBlob { size, chunk_size } => {
                let (res, ticket) = {
                    let mut vm = self.vmanager.lock();
                    let res = vm.create_blob(size, chunk_size);
                    let ticket = res
                        .is_ok()
                        .then(|| self.journal_append_vm(&VmReq::CreateBlob { size, chunk_size }))
                        .flatten();
                    (res, ticket)
                };
                self.journal_commit(ticket);
                VmResp::Created(res)
            }
            VmReq::CloneBlob { src, version } => {
                let (res, ticket) = {
                    let mut vm = self.vmanager.lock();
                    let res = vm.clone_blob(src, version);
                    let ticket = res
                        .is_ok()
                        .then(|| self.journal_append_vm(&VmReq::CloneBlob { src, version }))
                        .flatten();
                    (res, ticket)
                };
                self.journal_commit(ticket);
                VmResp::Cloned(res)
            }
            VmReq::Latest(blob) => {
                VmResp::Latest(self.vmanager.lock().meta(blob).map(|m| m.latest()))
            }
            VmReq::Size(blob) => VmResp::Size(self.vmanager.lock().meta(blob).map(|m| m.size)),
            VmReq::LiveSnapshots(blob) => {
                VmResp::LiveSnapshots(self.vmanager.lock().live_snapshots(blob))
            }
            VmReq::VersionMeta(blob, version) => {
                let vm = self.vmanager.lock();
                VmResp::VersionMeta(vm.meta(blob).and_then(|meta| {
                    let root = meta
                        .root(version)
                        .ok_or(BlobError::NoSuchVersion(blob, version))?;
                    Ok(VersionInfo {
                        root,
                        size: meta.size,
                        chunk_size: meta.chunk_size,
                        span: meta.span,
                    })
                }))
            }
            VmReq::Publish { blob, base, root } => {
                // The paper's hot mutation: append under the vmanager
                // lock, park on the sync ticket after dropping it —
                // concurrent publishes share one fsync under group
                // commit instead of serializing N barriers behind the
                // state machine.
                let (res, ticket) = {
                    let mut vm = self.vmanager.lock();
                    let res = vm.publish(blob, base, root);
                    let ticket = res
                        .is_ok()
                        .then(|| self.journal_append_vm(&VmReq::Publish { blob, base, root }))
                        .flatten();
                    (res, ticket)
                };
                self.journal_commit(ticket);
                VmResp::Published(res)
            }
            VmReq::DeleteSnapshots { blob, versions } => {
                // Compound under ONE lock: the delete and the live-root
                // frontier snapshot must be atomic, exactly as in the
                // direct path's critical section. Only the sync barrier
                // moves outside it.
                let mut ticket = None;
                let res = {
                    let mut vm = self.vmanager.lock();
                    (|| {
                        let dead_roots = vm.delete_snapshots(blob, &versions)?;
                        ticket = self.journal_append_vm(&VmReq::DeleteSnapshots {
                            blob,
                            versions: versions.clone(),
                        });
                        let live_roots = vm.family_live_roots(blob)?;
                        let span = vm.meta(blob)?.span;
                        Ok(DeleteOutcome {
                            dead_roots,
                            live_roots,
                            span,
                        })
                    })()
                };
                self.journal_commit(ticket);
                VmResp::Deleted(res)
            }
            VmReq::ReserveKeys(n) => {
                let (range, ticket) = {
                    let mut vm = self.vmanager.lock();
                    let range = vm.reserve_keys(n);
                    // Durable via high-water mark, not per-reservation
                    // records: the barrier fires only when the allocator
                    // crosses the last persisted mark.
                    let ticket = self.journal_note_key(vm.next_key());
                    (range, ticket)
                };
                self.journal_commit(ticket);
                VmResp::Reserved(range)
            }
        }
    }

    fn dispatch_pm(&self, q: PmReq) -> PmResp {
        match q {
            PmReq::Allocate {
                n,
                chunk_bytes,
                replication,
                down,
            } => {
                let (res, ticket) = {
                    let mut pm = self.pmanager.lock();
                    let res = pm.allocate_avoiding(n, chunk_bytes, replication, &down);
                    let ticket = if res.is_ok() {
                        self.journal_note_chunk(pm.next_chunk())
                    } else {
                        None
                    };
                    (res, ticket)
                };
                self.journal_commit(ticket);
                PmResp::Allocated(res)
            }
        }
    }

    fn dispatch_meta(&self, shard: usize, q: MetaReq) -> MetaResp {
        match q {
            MetaReq::ReadNodes(keys) => {
                // One shard lock across the whole batch (the "one
                // metadata round per level" acquisition pattern).
                let part = self.meta[shard].lock();
                MetaResp::Nodes(keys.into_iter().map(|k| part.get(k)).collect())
            }
            MetaReq::WriteNodes(nodes) => {
                // Journaled without an fsync: nodes are unreachable
                // until the publish that references them, and the
                // publish's own fsync covers every record appended
                // before it. Ordering with the shard lock is immaterial
                // — node keys are write-once with identical content.
                if let Some(j) = &self.journal {
                    j.journal
                        .lock()
                        .append_meta(shard as u32, &nodes)
                        .expect("journal meta append");
                }
                self.meta[shard].lock().put(nodes);
                MetaResp::Written
            }
        }
    }

    fn dispatch_provider(&self, node: bff_net::NodeId, q: ProviderReq) -> ProviderResp {
        match q {
            ProviderReq::Put(items) => ProviderResp::Put(self.providers.put_batch(node, items)),
            ProviderReq::Fetch(ids) => {
                // One provider-shard acquisition for the whole batch;
                // an unknown node serves every chunk as absent, which is
                // what the client's failover path expects.
                let fetched = match self.providers.lock(node) {
                    Some(mut p) => ids.into_iter().map(|id| p.get(id)).collect(),
                    None => vec![None; ids.len()],
                };
                ProviderResp::Fetched(fetched)
            }
            ProviderReq::Peek(id) => {
                ProviderResp::Peeked(self.providers.lock(node).and_then(|p| p.peek(id)))
            }
            ProviderReq::Retain(id) => ProviderResp::Retained(self.providers.retain(node, id)),
            ProviderReq::Release(id) => ProviderResp::Released(self.providers.release(node, id)),
            ProviderReq::ReleaseCounted(id, n) => {
                ProviderResp::ReleaseCounted(self.providers.release_counted(node, id, n))
            }
        }
    }

    fn dispatch_board(&self, q: BoardReq) -> BoardResp {
        match q {
            BoardReq::NovelOf {
                key,
                batch,
                min_publishers,
            } => BoardResp::Novel(self.pattern_board.novel_of(key, &batch, min_publishers)),
            BoardReq::Merge {
                key,
                publisher,
                batch,
            } => BoardResp::Merged(self.pattern_board.merge(key, publisher, &batch)),
            BoardReq::SequenceLen(key) => {
                BoardResp::SequenceLen(self.pattern_board.sequence_len(key))
            }
            BoardReq::Sequence {
                key,
                min_publishers,
            } => BoardResp::Sequence(
                self.pattern_board
                    .sequence_with_confidence(key, min_publishers)
                    .map(|(seq, conf)| ((*seq).clone(), conf)),
            ),
            BoardReq::Purge { keys, freed } => {
                // Snapshot-GC hygiene for both services hosted beside the
                // provider manager, in one message: board patterns and
                // cluster-index entries of the freed chunks.
                for &key in &keys {
                    self.pattern_board.drop_pattern(key);
                }
                let evicted = if freed.is_empty() {
                    0
                } else {
                    let freed: FastSet<_> = freed.into_iter().collect();
                    self.cluster_write().evict_chunks(&freed)
                };
                BoardResp::Purged(evicted)
            }
        }
    }

    fn dispatch_cluster(&self, q: ClusterReq) -> ClusterResp {
        match q {
            ClusterReq::Get(keys) => {
                // One shared acquisition for the whole probe batch.
                let index = self.cluster_read();
                ClusterResp::Got(keys.iter().map(|k| index.get(k)).collect())
            }
            ClusterReq::GetExclusive(key) => {
                // The coarse-probe ablation: one exclusive acquisition
                // per key, exactly as the direct path models it.
                ClusterResp::GotOne(self.cluster_write().get(&key))
            }
            ClusterReq::NovelOf(keys) => {
                ClusterResp::Novel(self.cluster_read().novel_of(keys.iter()))
            }
            ClusterReq::Record(entries) => {
                // One exclusive acquisition for the whole commit batch.
                let mut index = self.cluster_write();
                for (key, desc) in entries {
                    index.record(key, desc);
                }
                ClusterResp::Recorded
            }
            ClusterReq::Forget(key) => {
                self.cluster_write().forget(&key);
                ClusterResp::Forgotten
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bff_net::NodeId;
    use bff_wire::types::{BlobId, ChunkId, NodeKey};

    fn state() -> ServerState {
        let nodes: Vec<NodeId> = (0..3).map(NodeId).collect();
        let topo = BlobTopology::colocated(&nodes, NodeId(4));
        ServerState::new(&BlobConfig::default(), &topo, Placement::RoundRobin)
    }

    #[test]
    fn vm_roundtrip_through_dispatch() {
        let s = state();
        let resp = s
            .dispatch(Req::Vm(VmReq::CreateBlob {
                size: 1024,
                chunk_size: 256,
            }))
            .unwrap();
        let Resp::Vm(VmResp::Created(Ok(blob))) = resp else {
            panic!("unexpected response: {resp:?}");
        };
        let resp = s.dispatch(Req::Vm(VmReq::Latest(blob))).unwrap();
        assert_eq!(resp, Resp::Vm(VmResp::Latest(Ok(crate::api::Version(0)))));
    }

    #[test]
    fn unknown_provider_degrades_gracefully() {
        let s = state();
        let stranger = NodeId(99);
        let resp = s
            .dispatch(Req::Provider {
                node: stranger,
                req: ProviderReq::Fetch(vec![ChunkId(1), ChunkId(2)]),
            })
            .unwrap();
        assert_eq!(
            resp,
            Resp::Provider(ProviderResp::Fetched(vec![None, None]))
        );
        let resp = s
            .dispatch(Req::Provider {
                node: stranger,
                req: ProviderReq::Retain(ChunkId(1)),
            })
            .unwrap();
        assert_eq!(resp, Resp::Provider(ProviderResp::Retained(false)));
    }

    #[test]
    fn out_of_range_shard_is_wire_error() {
        let s = state();
        let err = s
            .dispatch(Req::Meta {
                shard: 99,
                req: MetaReq::ReadNodes(vec![NodeKey(1)]),
            })
            .unwrap_err();
        assert_eq!(err, WireError::BadFrame);
    }

    #[test]
    fn misrouted_frame_rejected() {
        let s = state();
        let frame = bff_wire::encode(&Req::Vm(VmReq::Latest(BlobId(1))));
        assert_eq!(
            s.handle_frame(RouteKey::Pm, &frame).unwrap_err(),
            WireError::BadFrame
        );
        // Correctly routed frames decode, dispatch and encode.
        let reply = s.handle_frame(RouteKey::Vm, &frame).unwrap();
        let resp: Resp = bff_wire::decode(&reply).unwrap();
        assert_eq!(
            resp,
            Resp::Vm(VmResp::Latest(Err(BlobError::NoSuchBlob(BlobId(1)))))
        );
    }
}
