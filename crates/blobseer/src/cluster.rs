//! The cluster-wide content-addressed dedup index.
//!
//! The node-local digest index (PR 3) collapses duplicate content a
//! *single* node commits, but the paper's multisnapshotting claim is
//! storage efficiency under many concurrent writers of near-identical
//! data: co-deployed VMs on *different* nodes commit the same
//! contextualization payloads, and a node-local index stores (and
//! replicates over the network) each node's copy redundantly. The
//! [`ClusterIndex`] promotes the digest index to a cluster service
//! hosted *beside the provider manager*, on the same deployment and
//! transport model as the [`crate::board::PatternBoard`]:
//!
//! * **Probes are free.** The index is gossiped to the compute nodes
//!   along the `bff_bcast` k-ary tree, so `write_chunks` consults its
//!   local replica without any RPC — the common boot-path commit (all
//!   content already indexed, or all content fresh) never pays an extra
//!   control round for the cluster probe.
//! * **Publishes are batched and novelty-filtered.** After a commit
//!   becomes durable, its content keys that the replica does not
//!   already hold are pushed to the host in **one** control RPC and
//!   gossiped onward ([`gossip_charge`](crate::board::gossip_charge)
//!   charges the dissemination). Once a cohort's content has converged,
//!   commits publish nothing and the control plane is quiet.
//! * **Hits commit by reference.** A cluster hit is validated and
//!   retained through exactly the machinery of a node-local hit
//!   (byte-verify unless the digest is collision-resistant, then
//!   [`crate::provider::Provider::retain`] per live replica), so the
//!   rollback-exact failure semantics of the write path carry over
//!   unchanged. The node-local index stays as the first-level filter —
//!   the cluster replica is only probed on a node-local miss.
//!
//! The index also keeps a reverse chunk-id map so snapshot garbage
//! collection ([`crate::Client::delete_snapshot`]) can evict the entries
//! of freed chunks in O(freed), not O(index).

use crate::api::{ChunkDesc, ChunkId};
use bff_data::{ContentKey, DigestIndex, FastMap, FastSet};

/// The cluster dedup index state (one logical instance per deployed
/// service, hosted on `topology().pmanager`; compute nodes read their
/// gossiped replicas — in this model the replica state *is* the shared
/// memory, and the gossip charges make the fabric see the dissemination
/// traffic a real deployment would pay).
#[derive(Debug)]
pub struct ClusterIndex {
    entries: DigestIndex<ChunkDesc>,
    /// Reverse map: chunk id → content keys indexed under it (almost
    /// always exactly one; a digest collision keyed by different
    /// lengths can map two keys to one id's content — kept as a set so
    /// GC eviction never strands an entry).
    by_chunk: FastMap<ChunkId, FastSet<ContentKey>>,
}

impl ClusterIndex {
    /// An index bounded at `cap` entries (`0` disables it).
    pub fn new(cap: usize) -> Self {
        Self {
            entries: DigestIndex::new(cap),
            by_chunk: FastMap::default(),
        }
    }

    /// Look up a content key in the (gossiped) index.
    pub fn get(&self, key: &ContentKey) -> Option<ChunkDesc> {
        self.entries.get(key).cloned()
    }

    /// The subset of `keys` the index does not hold yet — the publisher
    /// consults its replica with this *before* paying the publish RPC,
    /// so converged cohorts publish nothing.
    pub fn novel_of<'a>(&self, keys: impl IntoIterator<Item = &'a ContentKey>) -> Vec<ContentKey> {
        keys.into_iter()
            .filter(|k| self.entries.get(k).is_none())
            .copied()
            .collect()
    }

    /// Record (or refresh) the descriptor holding `key`'s content,
    /// maintaining the reverse map — including entries displaced by the
    /// capacity bound.
    pub fn record(&mut self, key: ContentKey, desc: ChunkDesc) {
        if self.entries.capacity() == 0 {
            return;
        }
        // A re-record under a different chunk id must not leave the old
        // reverse slot behind.
        if let Some(old) = self.entries.get(&key) {
            if old.id != desc.id {
                self.unlink(&key, old.id);
            }
        }
        let id = desc.id;
        self.entries.insert(key, desc);
        self.by_chunk.entry(id).or_default().insert(key);
        // The bounded insert may have evicted older entries; resync the
        // reverse map lazily by dropping reverse slots whose key no
        // longer resolves (cheap: only this id's set is touched on the
        // hot path, the full sweep happens on GC evictions).
        if self.entries.len() * 2 < self.by_chunk.len() {
            let entries = &self.entries;
            self.by_chunk.retain(|_, keys| {
                keys.retain(|k| entries.get(k).is_some());
                !keys.is_empty()
            });
        }
    }

    /// Drop a stale entry (the consumer validated a hit and found the
    /// chunk gone everywhere).
    pub fn forget(&mut self, key: &ContentKey) {
        if let Some(desc) = self.entries.remove(key) {
            self.unlink(key, desc.id);
        }
    }

    /// GC eviction: drop every entry whose descriptor points at one of
    /// the freed `ids`. Returns how many entries left the index.
    pub fn evict_chunks(&mut self, ids: &FastSet<ChunkId>) -> usize {
        let mut keys: Vec<ContentKey> = Vec::new();
        for id in ids {
            if let Some(set) = self.by_chunk.remove(id) {
                keys.extend(set);
            }
        }
        let mut removed = 0;
        for key in &keys {
            // Only remove if the entry still points at a freed id — a
            // racing re-record under a fresh chunk must survive.
            if self.entries.get(key).is_some_and(|d| ids.contains(&d.id)) {
                self.entries.remove(key);
                removed += 1;
            }
        }
        removed
    }

    fn unlink(&mut self, key: &ContentKey, id: ChunkId) {
        if let Some(set) = self.by_chunk.get_mut(&id) {
            set.remove(key);
            if set.is_empty() {
                self.by_chunk.remove(&id);
            }
        }
    }

    /// Number of content keys currently indexed.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bff_data::{ContentDigest, Digest};
    use bff_net::NodeId;
    use std::sync::Arc;

    fn key(n: u64) -> ContentKey {
        (100, ContentDigest::Weak(Digest(n)))
    }

    fn desc(id: u64) -> ChunkDesc {
        ChunkDesc {
            id: ChunkId(id),
            replicas: Arc::from([NodeId(0), NodeId(1)].as_slice()),
        }
    }

    #[test]
    fn record_lookup_forget_roundtrip() {
        let mut idx = ClusterIndex::new(16);
        assert!(idx.get(&key(1)).is_none());
        idx.record(key(1), desc(7));
        assert_eq!(idx.get(&key(1)), Some(desc(7)));
        assert_eq!(idx.len(), 1);
        idx.forget(&key(1));
        assert!(idx.get(&key(1)).is_none());
        assert!(idx.is_empty());
    }

    #[test]
    fn novel_of_filters_known_keys() {
        let mut idx = ClusterIndex::new(16);
        idx.record(key(1), desc(7));
        let keys = [key(1), key(2)];
        assert_eq!(idx.novel_of(keys.iter()), vec![key(2)]);
        idx.record(key(2), desc(8));
        assert!(idx.novel_of(keys.iter()).is_empty());
    }

    #[test]
    fn evict_chunks_drops_only_freed_entries() {
        let mut idx = ClusterIndex::new(16);
        idx.record(key(1), desc(7));
        idx.record(key(2), desc(8));
        idx.record(key(3), desc(7)); // a length-distinct key on the same id
        let mut freed: FastSet<ChunkId> = FastSet::default();
        freed.insert(ChunkId(7));
        assert_eq!(idx.evict_chunks(&freed), 2);
        assert!(idx.get(&key(1)).is_none());
        assert!(idx.get(&key(3)).is_none());
        assert_eq!(idx.get(&key(2)), Some(desc(8)), "unrelated entry survives");
    }

    #[test]
    fn rerecord_moves_reverse_slot() {
        let mut idx = ClusterIndex::new(16);
        idx.record(key(1), desc(7));
        idx.record(key(1), desc(9)); // content re-pushed under a new chunk
        let mut freed: FastSet<ChunkId> = FastSet::default();
        freed.insert(ChunkId(7));
        // Evicting the old id must not take the re-recorded entry down.
        assert_eq!(idx.evict_chunks(&freed), 0);
        assert_eq!(idx.get(&key(1)), Some(desc(9)));
    }

    #[test]
    fn zero_capacity_index_is_inert() {
        let mut idx = ClusterIndex::new(0);
        idx.record(key(1), desc(7));
        assert!(idx.is_empty());
        assert!(idx.get(&key(1)).is_none());
    }
}
