//! The provider manager: allocates chunk ids and decides which providers
//! store each new chunk (§3.1.3: chunks "evenly distributed among the
//! local disks participating in the shared pool").
//!
//! The default strategy is round-robin with a per-provider load counter,
//! which is what gives multideployment its even distribution of the I/O
//! workload. Replicas of one chunk are placed on consecutive distinct
//! providers.

use crate::api::{BlobError, BlobResult, ChunkDesc, ChunkId};
use bff_net::NodeId;

/// Allocation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Strict rotation over the provider list.
    RoundRobin,
    /// Pick the least-loaded provider (by bytes allocated), breaking ties
    /// by index. Still spreads replicas over distinct providers.
    LeastLoaded,
}

/// Provider-manager state (one logical instance per service).
#[derive(Debug)]
pub struct PManager {
    providers: Vec<NodeId>,
    strategy: Placement,
    next_chunk: u64,
    cursor: usize,
    load_bytes: Vec<u64>,
}

impl PManager {
    /// Manage the given provider set.
    pub fn new(providers: Vec<NodeId>, strategy: Placement) -> Self {
        let n = providers.len();
        Self {
            providers,
            strategy,
            next_chunk: 1,
            cursor: 0,
            load_bytes: vec![0; n],
        }
    }

    /// Next id [`PManager::allocate`] would hand out.
    pub fn next_chunk(&self) -> u64 {
        self.next_chunk
    }

    /// Raise the chunk-id allocator to at least `floor` (recovery:
    /// replay skips to the journaled high-water mark so ids acked
    /// before a crash are never reissued for different data). The
    /// placement cursor and load counters restart from zero — they are
    /// placement preferences, not correctness state.
    pub fn ensure_chunk_floor(&mut self, floor: u64) {
        self.next_chunk = self.next_chunk.max(floor);
    }

    /// Allocate `n` chunks of `chunk_bytes` each with `replication`
    /// replicas. Returns one descriptor per chunk, in order.
    pub fn allocate(
        &mut self,
        n: usize,
        chunk_bytes: u64,
        replication: usize,
    ) -> BlobResult<Vec<ChunkDesc>> {
        self.allocate_avoiding(n, chunk_bytes, replication, &[])
    }

    /// Allocate like [`PManager::allocate`], but skip providers flagged in
    /// `down` (indexed like the provider list; short or empty slices read
    /// as all-up). This is the caller's fail-stop view of the fabric:
    /// placing fresh chunks on a known-dead node would only defer the
    /// failure to push time.
    ///
    /// Degradation rules when the up set is small: with fewer up
    /// providers than `replication`, replicas shrink to the up set; with
    /// *no* up providers, allocation falls back to the full list and the
    /// push-side per-replica failover reports the real error chunk by
    /// chunk.
    pub fn allocate_avoiding(
        &mut self,
        n: usize,
        chunk_bytes: u64,
        replication: usize,
        down: &[bool],
    ) -> BlobResult<Vec<ChunkDesc>> {
        if self.providers.is_empty() {
            return Err(BlobError::BadInput("no providers registered"));
        }
        if replication == 0 || replication > self.providers.len() {
            return Err(BlobError::BadInput("replication must be in 1..=providers"));
        }
        let is_down = |i: usize| down.get(i).copied().unwrap_or(false);
        let up_count = (0..self.providers.len()).filter(|&i| !is_down(i)).count();
        let (skip_down, per_chunk) = if up_count == 0 {
            (false, replication)
        } else {
            (true, replication.min(up_count))
        };
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let id = ChunkId(self.next_chunk);
            self.next_chunk += 1;
            let first = match self.strategy {
                Placement::RoundRobin => loop {
                    let c = self.cursor;
                    self.cursor = (self.cursor + 1) % self.providers.len();
                    if !(skip_down && is_down(c)) {
                        break c;
                    }
                },
                Placement::LeastLoaded => self
                    .load_bytes
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !(skip_down && is_down(*i)))
                    .min_by_key(|(i, &l)| (l, *i))
                    .map(|(i, _)| i)
                    .expect("up set is non-empty"),
            };
            // Replicas on consecutive distinct (up, where possible)
            // providers starting at `first`.
            let mut replicas = Vec::with_capacity(per_chunk);
            for r in 0..self.providers.len() {
                let idx = (first + r) % self.providers.len();
                if skip_down && is_down(idx) {
                    continue;
                }
                self.load_bytes[idx] += chunk_bytes;
                replicas.push(self.providers[idx]);
                if replicas.len() == per_chunk {
                    break;
                }
            }
            out.push(ChunkDesc {
                id,
                replicas: replicas.into(),
            });
        }
        Ok(out)
    }

    /// Bytes allocated per provider (diagnostic / balance tests).
    pub fn load(&self) -> &[u64] {
        &self.load_bytes
    }

    /// The provider list.
    pub fn providers(&self) -> &[NodeId] {
        &self.providers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn round_robin_rotates() {
        let mut pm = PManager::new(nodes(3), Placement::RoundRobin);
        let descs = pm.allocate(5, 100, 1).unwrap();
        let order: Vec<u32> = descs.iter().map(|d| d.replicas[0].0).collect();
        assert_eq!(order, vec![0, 1, 2, 0, 1]);
        // Chunk ids are unique and increasing.
        let ids: Vec<u64> = descs.iter().map(|d| d.id.0).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn replicas_are_distinct_consecutive_providers() {
        let mut pm = PManager::new(nodes(4), Placement::RoundRobin);
        let d = pm.allocate(1, 100, 3).unwrap().remove(0);
        assert_eq!(&d.replicas[..], [NodeId(0), NodeId(1), NodeId(2)]);
        let mut uniq = d.replicas.to_vec();
        uniq.dedup();
        assert_eq!(uniq.len(), 3);
    }

    #[test]
    fn round_robin_balances_load_evenly() {
        let mut pm = PManager::new(nodes(4), Placement::RoundRobin);
        pm.allocate(8192, 256 << 10, 1).unwrap();
        let loads = pm.load();
        assert!(
            loads.iter().all(|&l| l == loads[0]),
            "perfectly even: {loads:?}"
        );
    }

    #[test]
    fn least_loaded_fills_gaps() {
        let mut pm = PManager::new(nodes(3), Placement::LeastLoaded);
        // Pre-load provider 0 and 1 via allocations.
        pm.allocate(2, 1000, 1).unwrap(); // goes to 0 then... least-loaded: 0 then 1
        let d = pm.allocate(1, 1000, 1).unwrap().remove(0);
        assert_eq!(d.replicas[0], NodeId(2), "least loaded gets the next chunk");
    }

    #[test]
    fn replication_bounds_checked() {
        let mut pm = PManager::new(nodes(2), Placement::RoundRobin);
        assert!(pm.allocate(1, 10, 0).is_err());
        assert!(pm.allocate(1, 10, 3).is_err());
    }

    #[test]
    fn no_providers_is_an_error() {
        let mut pm = PManager::new(vec![], Placement::RoundRobin);
        assert!(pm.allocate(1, 10, 1).is_err());
    }

    #[test]
    fn down_providers_skipped_at_allocation() {
        let mut pm = PManager::new(nodes(4), Placement::RoundRobin);
        let down = [false, false, true, false];
        let descs = pm.allocate_avoiding(8, 100, 1, &down).unwrap();
        assert!(
            descs.iter().all(|d| d.replicas[0] != NodeId(2)),
            "no chunk lands on the down provider"
        );
        assert_eq!(pm.load()[2], 0);
        // Rotation still covers all up providers.
        let firsts: Vec<u32> = descs.iter().map(|d| d.replicas[0].0).collect();
        assert_eq!(firsts, vec![0, 1, 3, 0, 1, 3, 0, 1]);
    }

    #[test]
    fn replicas_avoid_down_providers() {
        let mut pm = PManager::new(nodes(4), Placement::RoundRobin);
        let down = [false, true, false, false];
        let d = pm.allocate_avoiding(1, 100, 3, &down).unwrap().remove(0);
        assert_eq!(&d.replicas[..], [NodeId(0), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn replication_degrades_to_up_set() {
        let mut pm = PManager::new(nodes(3), Placement::RoundRobin);
        let down = [false, true, true];
        let d = pm.allocate_avoiding(1, 100, 3, &down).unwrap().remove(0);
        assert_eq!(&d.replicas[..], [NodeId(0)], "only the up provider");
        // With nothing up, fall back to the full set (push-side failover
        // owns the error then).
        let mut pm = PManager::new(nodes(2), Placement::RoundRobin);
        let d = pm
            .allocate_avoiding(1, 100, 2, &[true, true])
            .unwrap()
            .remove(0);
        assert_eq!(d.replicas.len(), 2);
    }

    #[test]
    fn empty_down_slice_matches_plain_allocate() {
        let mut a = PManager::new(nodes(3), Placement::RoundRobin);
        let mut b = PManager::new(nodes(3), Placement::RoundRobin);
        let da = a.allocate(5, 64, 2).unwrap();
        let db = b.allocate_avoiding(5, 64, 2, &[]).unwrap();
        assert_eq!(da, db);
        assert_eq!(a.load(), b.load());
    }
}
