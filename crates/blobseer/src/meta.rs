//! Distributed metadata storage: segment-tree nodes hash-partitioned
//! across metadata servers (BlobSeer's DHT-backed metadata, §4.1).
//!
//! Nodes are immutable once written (shadowing never updates in place),
//! which is what makes aggressive client-side caching of tree nodes safe.

use crate::api::{BlobError, BlobResult, NodeKey, TreeNode};
use bff_data::FastMap;

/// One metadata server's shard.
#[derive(Debug, Default)]
pub struct MetaPartition {
    nodes: FastMap<NodeKey, TreeNode>,
}

impl MetaPartition {
    /// Empty shard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store nodes. Keys are write-once; double inserts must carry
    /// identical content (idempotent retry).
    pub fn put(&mut self, entries: impl IntoIterator<Item = (NodeKey, TreeNode)>) {
        for (k, v) in entries {
            debug_assert!(!k.is_null(), "NULL key is never stored");
            if let Some(prev) = self.nodes.get(&k) {
                debug_assert_eq!(prev, &v, "metadata nodes are immutable");
            }
            self.nodes.insert(k, v);
        }
    }

    /// Fetch one node.
    pub fn get(&self, key: NodeKey) -> BlobResult<TreeNode> {
        self.nodes
            .get(&key)
            .cloned()
            .ok_or(BlobError::MetadataMissing(key))
    }

    /// Number of nodes stored (metadata-overhead accounting).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

/// The shard index a node key lives on, out of `partitions`.
///
/// Keys are sequential counters, so a multiplicative hash spreads
/// consecutive keys across shards (Fibonacci hashing).
#[inline]
pub fn partition_of(key: NodeKey, partitions: usize) -> usize {
    debug_assert!(partitions > 0);
    let h = key.0.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (h >> 32) as usize % partitions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut m = MetaPartition::new();
        let n = TreeNode::Inner {
            left: NodeKey(1),
            right: NodeKey::NULL,
        };
        m.put([(NodeKey(5), n.clone())]);
        assert_eq!(m.get(NodeKey(5)).unwrap(), n);
        assert!(matches!(
            m.get(NodeKey(6)),
            Err(BlobError::MetadataMissing(_))
        ));
    }

    #[test]
    fn partitioning_is_stable_and_spread() {
        let parts = 8;
        let a = partition_of(NodeKey(42), parts);
        assert_eq!(a, partition_of(NodeKey(42), parts));
        // Consecutive keys should not all land on one shard.
        let mut seen = std::collections::HashSet::new();
        for k in 1..100u64 {
            seen.insert(partition_of(NodeKey(k), parts));
        }
        assert!(seen.len() >= parts / 2, "poor spread: {seen:?}");
    }

    #[test]
    fn idempotent_puts_allowed() {
        let mut m = MetaPartition::new();
        let n = TreeNode::Inner {
            left: NodeKey(1),
            right: NodeKey(2),
        };
        m.put([(NodeKey(5), n.clone())]);
        m.put([(NodeKey(5), n)]);
        assert_eq!(m.node_count(), 1);
    }
}
