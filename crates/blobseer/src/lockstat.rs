//! Lock-contention instrumentation for the serving hot paths.
//!
//! The wall-clock load generator (`load_sweep`) needs to *attribute*
//! throughput loss to specific locks, not just observe it. Each
//! instrumented lock site owns a [`LockProbe`]; acquisitions go through
//! the `probed_*` helpers, which try the lock without blocking first and
//! count an acquisition as *contended* when that attempt fails. The
//! counters are relaxed atomics — a handful of nanoseconds per
//! acquisition, cheap enough to leave on permanently.

use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters of one instrumented lock site.
#[derive(Debug, Default)]
pub struct LockProbe {
    acquires: AtomicU64,
    contended: AtomicU64,
}

/// Snapshot of a [`LockProbe`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockContention {
    /// Total acquisitions through this probe.
    pub acquires: u64,
    /// Acquisitions that found the lock held and had to block.
    pub contended: u64,
}

impl LockContention {
    /// Contended fraction in `[0, 1]` (0 when never acquired).
    pub fn contended_frac(&self) -> f64 {
        if self.acquires == 0 {
            0.0
        } else {
            self.contended as f64 / self.acquires as f64
        }
    }
}

impl LockProbe {
    /// Record one acquisition; `contended` when the non-blocking attempt
    /// failed.
    #[inline]
    pub fn note(&self, contended: bool) {
        self.acquires.fetch_add(1, Ordering::Relaxed);
        if contended {
            self.contended.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot the counters.
    pub fn snapshot(&self) -> LockContention {
        LockContention {
            acquires: self.acquires.load(Ordering::Relaxed),
            contended: self.contended.load(Ordering::Relaxed),
        }
    }
}

/// Lock a mutex, counting contention on `probe`.
#[inline]
pub fn probed_lock<'a, T>(probe: &LockProbe, lock: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match lock.try_lock() {
        Some(g) => {
            probe.note(false);
            g
        }
        None => {
            probe.note(true);
            lock.lock()
        }
    }
}

/// Acquire shared read access, counting contention on `probe`.
#[inline]
pub fn probed_read<'a, T>(probe: &LockProbe, lock: &'a RwLock<T>) -> RwLockReadGuard<'a, T> {
    match lock.try_read() {
        Some(g) => {
            probe.note(false);
            g
        }
        None => {
            probe.note(true);
            lock.read()
        }
    }
}

/// Acquire exclusive write access, counting contention on `probe`.
#[inline]
pub fn probed_write<'a, T>(probe: &LockProbe, lock: &'a RwLock<T>) -> RwLockWriteGuard<'a, T> {
    match lock.try_write() {
        Some(g) => {
            probe.note(false);
            g
        }
        None => {
            probe.note(true);
            lock.write()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_acquisitions_count_clean() {
        let probe = LockProbe::default();
        let m = Mutex::new(0);
        for _ in 0..5 {
            *probed_lock(&probe, &m) += 1;
        }
        let s = probe.snapshot();
        assert_eq!(s.acquires, 5);
        assert_eq!(s.contended, 0);
        assert_eq!(s.contended_frac(), 0.0);
    }

    #[test]
    fn blocked_acquisition_counts_contended() {
        let probe = LockProbe::default();
        let l = RwLock::new(0);
        // A reader arriving while a writer holds the lock takes the
        // contended branch; run it from another thread so the blocking
        // read can actually complete once the writer drops.
        let w = l.write();
        std::thread::scope(|s| {
            let h = s.spawn(|| {
                let _r = probed_read(&probe, &l);
            });
            while probe.snapshot().acquires == 0 {
                std::thread::yield_now();
            }
            drop(w);
            h.join().unwrap();
        });
        let _r2 = probed_read(&probe, &l);
        let s = probe.snapshot();
        assert_eq!(s.acquires, 2);
        assert_eq!(s.contended, 1);
        assert!(s.contended_frac() > 0.0);
    }
}
