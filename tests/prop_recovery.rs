//! Property suite for crash recovery of the durable layer: for random
//! op sequences, killing the writer at an arbitrary byte offset (a torn
//! write — the file loses its tail, or a byte is damaged in place) must
//! leave a state that replay either fully restores or cleanly truncates
//! to a prefix of what was appended. Recovery never panics, never
//! errors, and never serves chunk bytes that differ from what was
//! originally put — a torn or flipped tail may *lose* trailing records
//! (that is what the fsync-on-ack barrier is for), but it can never
//! *corrupt* surviving ones.
//!
//! Three layers are attacked independently: the raw [`RecordLog`]
//! framing, the provider's log-structured [`SegmentStore`] (including
//! rotation and compaction, via a tiny segment size), and the manager
//! [`Journal`].

use bff::blobseer::durable::{Journal, SegmentStore};
use bff::blobseer::{ChunkId, DurabilityStats, GroupCommit};
use bff::data::{Payload, RecordLog};
use bff::wire::msg::VmReq;
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Per-case scratch directory (no tempfile crate in the workspace).
fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bff-prop-recovery-{}-{tag}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Truncate `path` to `len` bytes (the torn-write crash model: an
/// append was cut mid-frame and everything after the cut never hit the
/// disk).
fn cut_file(path: &PathBuf, len: u64) {
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(path)
        .expect("open for truncation");
    f.set_len(len).expect("truncate");
}

/// Flip one byte of `path` in place (the damaged-sector crash model).
fn flip_byte(path: &PathBuf, at: usize) {
    let mut bytes = std::fs::read(path).expect("read file");
    if bytes.is_empty() {
        return;
    }
    let at = at % bytes.len();
    bytes[at] ^= 0x5A;
    std::fs::write(path, bytes).expect("write file");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cutting a record log at any byte offset recovers an exact prefix
    /// of the appended payloads; a cut at or past the end restores all
    /// of them.
    #[test]
    fn record_log_cut_recovers_prefix(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..300), 1..24),
        cut_pct in 0u64..120,
    ) {
        let dir = scratch("log-cut");
        let path = dir.join("log");
        let (_, mut log, torn) = RecordLog::open(&path).unwrap();
        prop_assert!(!torn);
        for p in &payloads {
            log.append(p).unwrap();
        }
        drop(log);

        let len = std::fs::metadata(&path).unwrap().len();
        let cut = (len * cut_pct / 100).min(len);
        cut_file(&path, cut);

        let (records, mut log, _) = RecordLog::open(&path).unwrap();
        prop_assert!(records.len() <= payloads.len());
        for (got, want) in records.iter().zip(&payloads) {
            prop_assert_eq!(&got.1, want, "recovered record diverged");
        }
        if cut >= len {
            prop_assert_eq!(records.len(), payloads.len(), "nothing was cut");
        }
        // The truncated log must accept appends again and keep them.
        log.append(b"after-recovery").unwrap();
        let survivors = records.len();
        drop(log);
        let (records, _, torn) = RecordLog::open(&path).unwrap();
        prop_assert!(!torn, "re-opened log is clean");
        prop_assert_eq!(records.len(), survivors + 1);
        prop_assert_eq!(records.last().unwrap().1.clone(), b"after-recovery".to_vec());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Flipping any single byte recovers an exact prefix: the checksum
    /// catches the damage and replay stops cleanly at the first bad
    /// record instead of panicking or returning garbage.
    #[test]
    fn record_log_flip_recovers_prefix(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..300), 1..24),
        at in 0usize..1_000_000,
    ) {
        let dir = scratch("log-flip");
        let path = dir.join("log");
        let (_, mut log, _) = RecordLog::open(&path).unwrap();
        for p in &payloads {
            log.append(p).unwrap();
        }
        drop(log);

        flip_byte(&path, at);
        let (records, _, _) = RecordLog::open(&path).unwrap();
        prop_assert!(records.len() < payloads.len(), "damage always loses the hit record");
        for (got, want) in records.iter().zip(&payloads) {
            prop_assert_eq!(&got.1, want, "recovered record diverged");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Random put/free traffic through the segment store (tiny segments,
    /// so rotation and compaction both run), then a torn tail at an
    /// arbitrary offset of an arbitrary segment file: reopening must
    /// succeed, and every chunk it still serves must be byte-identical
    /// to what was put under that id. A cut that removes nothing must
    /// restore the exact live set.
    #[test]
    fn segment_store_torn_tail_never_serves_corrupt_bytes(
        ops in prop::collection::vec((0u8..10, 0u64..24, 0usize..2000), 1..60),
        pick_seg in any::<u64>(),
        cut_pct in 0u64..120,
    ) {
        let dir = scratch("segstore");
        let (mut store, _, _) = SegmentStore::open(&dir, 4096).unwrap();
        // Content per id is immutable (chunk ids never carry different
        // data); a free may be followed by a re-put of the same bytes.
        let mut content: HashMap<ChunkId, Vec<u8>> = HashMap::new();
        let mut live: Vec<ChunkId> = Vec::new();
        // One guaranteed put so the directory always holds a file to cut.
        let anchor = ChunkId(999);
        content.insert(anchor, vec![0xAB; 64]);
        store.put(anchor, &Payload::from_bytes(vec![0xAB; 64])).unwrap();
        live.push(anchor);
        for &(kind, id, len) in &ops {
            let id = ChunkId(id + 1);
            if kind < 7 {
                let data = content
                    .entry(id)
                    .or_insert_with(|| vec![(id.0 as u8).wrapping_mul(37); len])
                    .clone();
                store.put(id, &Payload::from_bytes(data)).unwrap();
                if !live.contains(&id) {
                    live.push(id);
                }
            } else if let Some(pos) = live.iter().position(|&l| l == id) {
                store.free(id).unwrap();
                live.remove(pos);
            }
        }
        store.sync().unwrap();
        drop(store);

        // Tear the tail off one of the on-disk files.
        let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        files.sort();
        let victim = &files[(pick_seg % files.len() as u64) as usize];
        let len = std::fs::metadata(victim).unwrap().len();
        let cut = (len * cut_pct / 100).min(len);
        cut_file(victim, cut);

        let (store, refs, _) = SegmentStore::open(&dir, 4096).unwrap();
        for &id in refs.keys() {
            if let Some(got) = store.read(id) {
                prop_assert_eq!(
                    got.materialize(),
                    content[&id].clone(),
                    "chunk {:?} served different bytes after recovery", id
                );
            }
        }
        if cut >= len {
            // Nothing was torn: the live set must survive exactly.
            for &id in &live {
                let got = store.read(id);
                prop_assert!(got.is_some(), "live chunk {:?} lost without damage", id);
                prop_assert_eq!(got.unwrap().materialize(), content[&id].clone());
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Group commit preserves the fsync-before-ack contract at every
    /// crash point: appends go through the real [`GroupCommit`]
    /// coordinator (ticket under the log lock, leader fsync through
    /// [`RecordLog::sync_handle`]), only *some* of them commit — so the
    /// log alternates between fsynced prefixes and unsynced tails,
    /// exactly what interleaved committers leave between batched syncs.
    /// The crash then cuts the file anywhere *at or past* the last
    /// completed fsync (bytes a real crash could still tear). Replay
    /// must restore every acked record byte-identically (acked ⊆
    /// replayed), whatever survives must be an exact prefix of what was
    /// appended, and the truncated log must accept appends again.
    #[test]
    fn group_commit_crash_never_loses_acked_records(
        ops in prop::collection::vec(
            (prop::collection::vec(any::<u8>(), 1..200), any::<bool>()),
            1..30,
        ),
        cut_back in 0u64..1_000_000,
    ) {
        let dir = scratch("group-commit");
        let path = dir.join("log");
        let (_, log, torn) = RecordLog::open(&path).unwrap();
        prop_assert!(!torn);
        let log = Arc::new(Mutex::new(log));
        let gc = GroupCommit::new(
            Duration::from_millis(50),
            Arc::new(DurabilityStats::default()),
        );
        let mut appended = 0usize;
        let mut acked = 0usize;     // records covered by a completed fsync
        let mut durable_len = 0u64; // on-disk bytes covered by it
        for (payload, do_commit) in &ops {
            let ticket = {
                let mut l = log.lock().unwrap();
                l.append(payload).unwrap();
                gc.ticket()
            };
            appended += 1;
            if *do_commit {
                gc.commit(ticket, || {
                    let handle = log.lock().unwrap().sync_handle()?;
                    if let Some(f) = handle {
                        f.sync_data()?;
                    }
                    Ok(())
                })
                .unwrap();
                // The leader's high-water capture covers every append
                // at-or-before the ticket — here, all of them so far.
                acked = appended;
                durable_len = std::fs::metadata(&path).unwrap().len();
            }
        }
        drop(log);

        // Crash: anything past the last completed fsync may be torn,
        // anything before it may not (fdatasync completed).
        let len = std::fs::metadata(&path).unwrap().len();
        let cut = durable_len + cut_back % (len - durable_len + 1);
        cut_file(&path, cut);

        let (records, mut log, _) = RecordLog::open(&path).unwrap();
        prop_assert!(
            records.len() >= acked,
            "lost acked records: {} acked, {} replayed", acked, records.len()
        );
        prop_assert!(records.len() <= appended);
        for (got, (want, _)) in records.iter().zip(&ops) {
            prop_assert_eq!(&got.1, want, "replayed record diverged");
        }
        // The truncated log accepts appends and keeps them.
        log.append(b"after-crash").unwrap();
        let survivors = records.len();
        drop(log);
        let (records, _, torn) = RecordLog::open(&path).unwrap();
        prop_assert!(!torn, "re-opened log is clean");
        prop_assert_eq!(records.len(), survivors + 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Journal appends cut at an arbitrary byte offset recover an exact
    /// prefix of the journaled ops — a half-written publish is dropped,
    /// never misread as a different mutation.
    #[test]
    fn journal_cut_recovers_prefix(
        sizes in prop::collection::vec(1u64..1_000_000, 1..20),
        cut_pct in 0u64..120,
    ) {
        let dir = scratch("journal");
        let path = dir.join("journal.log");
        let (_, mut journal, torn) = Journal::open(&path).unwrap();
        prop_assert!(!torn);
        let ops: Vec<VmReq> = sizes
            .iter()
            .map(|&s| VmReq::CreateBlob { size: s, chunk_size: 4096 })
            .collect();
        for op in &ops {
            journal.append_vm(op).unwrap();
        }
        drop(journal);

        let len = std::fs::metadata(&path).unwrap().len();
        let cut = (len * cut_pct / 100).min(len);
        cut_file(&path, cut);

        let (records, _, _) = Journal::open(&path).unwrap();
        prop_assert!(records.len() <= ops.len());
        for (got, want) in records.iter().zip(&ops) {
            // Compare through the wire encoding: the record enums do not
            // implement PartialEq, the codec is canonical.
            let got = bff::wire::encode(got);
            let want =
                bff::wire::encode(&bff::blobseer::durable::JournalRecord::VmOp(want.clone()));
            prop_assert_eq!(got, want, "journal record diverged");
        }
        if cut >= len {
            prop_assert_eq!(records.len(), ops.len(), "nothing was cut");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
