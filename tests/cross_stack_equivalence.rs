//! Cross-stack equivalence: the same VM workload produces byte-identical
//! images regardless of which storage stack executes it and regardless of
//! execution mode (in-process vs simulated testbed). This is the property
//! that justifies using the simulator for the paper's figures: it changes
//! timing, never behaviour.

use bff::cloud::backend::{ImageBackend, MirrorBackend, QcowPvfsBackend, RawLocalBackend};
use bff::cloud::params::Calibration;
use bff::cloud::vm::{expected_image, run_vm_trace};
use bff::net::{ThreadFabric, ThreadParams};
use bff::prelude::*;
use bff::pvfs::{Pvfs, PvfsClient, PvfsConfig};
use bff::sim::{ClusterParams, SimCluster};
use bff::workloads::boottrace::BootProfile;
use bff::workloads::VmOp;
use parking_lot::Mutex;
use std::sync::Arc;

const IMG: u64 = 4 << 20;
const SEED: u64 = 0xC0FFEE;

fn image() -> Payload {
    Payload::synth(SEED, 0, IMG)
}

fn trace() -> Vec<VmOp> {
    BootProfile::scaled(IMG).generate(77)
}

fn mirror_backend(fabric: Arc<dyn Fabric>) -> MirrorBackend {
    let compute: Vec<NodeId> = (0..4).map(NodeId).collect();
    let topo = bff::blobseer::BlobTopology::colocated(&compute, NodeId(4));
    let cfg = BlobConfig {
        chunk_size: 64 << 10,
        ..Default::default()
    };
    let store = bff::blobseer::BlobStore::new(cfg, topo, fabric);
    let client = BlobClient::new(store, NodeId(0));
    let (blob, v) = client.upload(image()).unwrap();
    MirrorBackend::open(client, blob, v, &Calibration::default()).unwrap()
}

fn qcow_backend(fabric: Arc<dyn Fabric>) -> QcowPvfsBackend {
    let compute: Vec<NodeId> = (0..4).map(NodeId).collect();
    let pvfs = Pvfs::new(
        PvfsConfig {
            stripe_size: 64 << 10,
            ..Default::default()
        },
        compute,
        Arc::clone(&fabric),
    );
    let client = PvfsClient::new(pvfs, NodeId(0));
    let base = client.create(IMG).unwrap();
    client.write(base, 0, image()).unwrap();
    QcowPvfsBackend::create(client, base, NodeId(0), fabric, Calibration::default()).unwrap()
}

/// Run the trace on a backend and return the final image content.
fn final_image(backend: &mut dyn ImageBackend, fabric: &Arc<dyn Fabric>) -> Payload {
    run_vm_trace(fabric, NodeId(0), backend, 77, &trace()).unwrap();
    backend.read(0..IMG).unwrap()
}

#[test]
fn all_three_stacks_produce_identical_images() {
    let want = expected_image(&image(), 77, &trace());

    let f1: Arc<dyn Fabric> = LocalFabric::new(5);
    let mut raw = RawLocalBackend::new(NodeId(0), Arc::clone(&f1), image(), Calibration::default());
    let raw_img = final_image(&mut raw, &f1);

    let f2: Arc<dyn Fabric> = LocalFabric::new(5);
    let mut mir = mirror_backend(Arc::clone(&f2));
    let mir_img = final_image(&mut mir, &f2);

    let f3: Arc<dyn Fabric> = LocalFabric::new(5);
    let mut qc = qcow_backend(Arc::clone(&f3));
    let qc_img = final_image(&mut qc, &f3);

    assert!(raw_img.content_eq(&want), "raw local matches the model");
    assert!(
        mir_img.content_eq(&want),
        "mirroring module matches the model"
    );
    assert!(
        qc_img.content_eq(&want),
        "qcow2-over-pvfs matches the model"
    );
}

#[test]
fn simulated_and_local_execution_agree_byte_for_byte() {
    // In-process run.
    let f_local: Arc<dyn Fabric> = LocalFabric::new(5);
    let mut local = mirror_backend(Arc::clone(&f_local));
    let local_digest = final_image(&mut local, &f_local).digest();

    // Simulated run of the *same* logic: build the cluster, run the VM as
    // a simulated process, capture the digest from inside.
    let cluster = SimCluster::new(ClusterParams::grid5000(5));
    let f_sim: Arc<dyn Fabric> = cluster.fabric();
    let digest: Arc<Mutex<Option<bff::data::Digest>>> = Arc::new(Mutex::new(None));
    let digest2 = Arc::clone(&digest);
    let mut backend = mirror_backend(Arc::clone(&f_sim)); // staging: free
    cluster.sim().spawn("vm", move |_env| {
        let img = final_image(&mut backend, &f_sim);
        *digest2.lock() = Some(img.digest());
    });
    let end_us = cluster.run();
    assert!(end_us > 0, "the simulated run consumed virtual time");
    assert_eq!(
        digest.lock().expect("sim ran"),
        local_digest,
        "virtual time changes timing, never contents"
    );
}

/// Everything the cloud workload below is *logically* responsible for:
/// the bytes each instance observed, what moved over the fabric, and
/// what the dedup pipeline reused. Timing is deliberately absent.
#[derive(Debug, PartialEq)]
struct LogicalOutcome {
    image_digests: Vec<bff::data::Digest>,
    network_bytes: u64,
    transfers: u64,
    rpcs: u64,
    dedup_hits: u64,
    dedup_reused_bytes: u64,
    desc_lookups: u64,
}

/// A deterministic multideployment/multisnapshotting run on the full
/// cloud middleware: 4 instances boot the same image from 4 nodes,
/// contextualize with a shared + a private payload, snapshot, and one
/// terminates (snapshot GC). Prefetch stays off so no detached
/// read-ahead races the op sequence — every fabric (and every request
/// transport) must then execute the byte-identical schedule.
fn cloud_workload(fabric: Arc<dyn Fabric>) -> LogicalOutcome {
    // Transport from the environment (`BFF_TRANSPORT`), so the CI codec
    // matrix exercises this workload through the wire codec too.
    cloud_workload_via(fabric, BlobConfig::default().transport).0
}

/// [`cloud_workload`] under an explicit request transport; also returns
/// the transport's real serialized-byte counters.
fn cloud_workload_via(
    fabric: Arc<dyn Fabric>,
    transport: bff::blobseer::TransportMode,
) -> (LogicalOutcome, bff::net::transport::WireStats) {
    const IMG: u64 = 1 << 20;
    let compute: Vec<NodeId> = (0..4).map(NodeId).collect();
    let cloud = Cloud::new(
        Arc::clone(&fabric),
        compute.clone(),
        NodeId(4),
        BlobConfig {
            chunk_size: 64 << 10,
            dedup: true,
            cluster_dedup: true,
            prefetch: false,
            transport,
            ..Default::default()
        },
        Calibration::default(),
    );
    let (blob, v) = cloud.upload_image(Payload::synth(0xFAB, 0, IMG)).unwrap();
    let mut image_digests = Vec::new();
    let mut doomed = None;
    for (i, &node) in compute.iter().enumerate() {
        let mut vm = cloud.add_instance(blob, v, node).unwrap();
        image_digests.push(vm.backend.read(0..IMG).unwrap().digest());
        // Shared bytes (identical from every node: cluster-dedup food)
        // plus a private mark, then a snapshot.
        vm.backend
            .write(0, Payload::synth(0x5AFE, 0, 128 << 10))
            .unwrap();
        vm.backend
            .write(IMG / 2, Payload::synth(0xB00 + i as u64, 0, 32 << 10))
            .unwrap();
        let (sb, sv) = vm.snapshot().unwrap();
        let verifier = BlobClient::new(Arc::clone(cloud.store()), node);
        image_digests.push(verifier.read(sb, sv, 0..IMG).unwrap().digest());
        if i == 3 {
            doomed = Some(vm);
        }
    }
    cloud.terminate_instance(doomed.unwrap()).unwrap();
    fabric.quiesce();
    let stats = fabric.stats();
    let cache = cloud.metrics().cache;
    let wire = cloud.store().wire_stats();
    (
        LogicalOutcome {
            image_digests,
            network_bytes: stats.total_network_bytes(),
            transfers: stats.transfer_count(),
            rpcs: stats.rpc_count(),
            dedup_hits: cache.dedup_hits,
            dedup_reused_bytes: cache.dedup_reused_bytes,
            desc_lookups: cache.desc_hits + cache.desc_misses,
        },
        wire,
    )
}

#[test]
fn sim_and_thread_fabrics_agree_on_all_logical_outcomes() {
    // The virtual-time simulator runs the workload as a simulated
    // process; the wall-clock thread fabric runs it natively. Blob
    // contents AND every logical counter — bytes moved, transfer/rpc
    // counts, dedup hits — must match exactly; only timing may differ.
    let cluster = SimCluster::new(ClusterParams::grid5000(5));
    let sim_fabric: Arc<dyn Fabric> = cluster.fabric();
    let sim_outcome: Arc<Mutex<Option<LogicalOutcome>>> = Arc::new(Mutex::new(None));
    let out = Arc::clone(&sim_outcome);
    let f = Arc::clone(&sim_fabric);
    cluster.sim().spawn("cloud", move |_env| {
        *out.lock() = Some(cloud_workload(f));
    });
    assert!(cluster.run() > 0, "the simulated run consumed virtual time");
    let sim_outcome = sim_outcome.lock().take().expect("sim ran");

    let thread_outcome =
        cloud_workload(ThreadFabric::new(ThreadParams::fast(5)) as Arc<dyn Fabric>);

    assert_eq!(
        sim_outcome, thread_outcome,
        "fabrics may differ in timing, never in logical outcomes"
    );
    // And the workload was non-trivial on both sides.
    assert!(thread_outcome.network_bytes > 0 && thread_outcome.dedup_hits > 0);
}

#[test]
fn direct_codec_and_socket_transports_agree_on_all_logical_outcomes() {
    // The same cloud workload, carried three ways: typed values
    // dispatched in-process (direct), every message round-tripped
    // through the bff-wire binary codec (codec), and real framed TCP
    // over loopback listeners (socket). The transport carries requests
    // only — every modelled cost is charged to the fabric client-side —
    // so blob contents AND every logical counter (digests, bytes moved,
    // transfer/rpc counts, dedup hits) must match exactly.
    use bff::blobseer::TransportMode;

    let run = |mode| {
        cloud_workload_via(
            ThreadFabric::new(ThreadParams::fast(5)) as Arc<dyn Fabric>,
            mode,
        )
    };
    let (direct, direct_wire) = run(TransportMode::Direct);
    let (codec, codec_wire) = run(TransportMode::Codec);
    let (socket, socket_wire) = run(TransportMode::Socket);

    assert_eq!(
        direct, codec,
        "the codec round trip may cost CPU, never logical outcomes"
    );
    assert_eq!(
        direct, socket,
        "a real socket boundary may cost time, never logical outcomes"
    );

    // The direct path never serializes; both framed transports really
    // moved every request over the wire — and because the codec is
    // deterministic and the workload schedule is identical, the two
    // framed transports serialized byte-for-byte the same traffic.
    assert_eq!(direct_wire.calls, 0, "direct transports never frame");
    assert!(codec_wire.calls > 0, "codec transport frames every request");
    assert_eq!(
        codec_wire, socket_wire,
        "same schedule, same codec -> same wire traffic"
    );
}

#[test]
fn snapshot_through_both_stacks_holds_same_bytes() {
    // After identical writes, a mirror COMMIT snapshot and a qcow2 file
    // copy decode to the same virtual disk.
    let f1: Arc<dyn Fabric> = LocalFabric::new(5);
    let mut mir = mirror_backend(Arc::clone(&f1));
    let f2: Arc<dyn Fabric> = LocalFabric::new(5);
    let mut qc = qcow_backend(Arc::clone(&f2));

    for (i, (off, len)) in [(5000u64, 3000u64), (1 << 20, 200_000), (IMG - 4096, 4096)]
        .into_iter()
        .enumerate()
    {
        let data = Payload::synth(900 + i as u64, off, len);
        mir.write(off, data.clone()).unwrap();
        qc.write(off, data).unwrap();
    }
    mir.snapshot().unwrap();
    qc.snapshot().unwrap();
    let a = mir.read(0..IMG).unwrap();
    let b = qc.read(0..IMG).unwrap();
    assert!(a.content_eq(&b));
}
