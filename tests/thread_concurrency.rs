//! Real-thread concurrency over the in-process stack: many OS threads
//! booting, writing and snapshotting against one shared repository at
//! once. The simulator serializes execution, so this is the test that
//! exercises the actual lock discipline of the server state machines
//! (providers, managers, metadata shards) under parallelism.

use bff::blobseer::{BlobStore, BlobTopology};
use bff::cloud::backend::{ImageBackend, MirrorBackend};
use bff::cloud::params::Calibration;
use bff::prelude::*;
use std::sync::Arc;

const IMG: u64 = 2 << 20;
const THREADS: usize = 16;

fn shared_store() -> (Arc<BlobStore>, BlobId, Version, Payload) {
    let fabric = LocalFabric::new(THREADS + 1);
    let compute: Vec<NodeId> = (0..THREADS as u32).map(NodeId).collect();
    let topo = BlobTopology::colocated(&compute, NodeId(THREADS as u32));
    let cfg = BlobConfig {
        chunk_size: 64 << 10,
        ..Default::default()
    };
    let store = BlobStore::new(cfg, topo, fabric as Arc<dyn Fabric>);
    let image = Payload::synth(0x7EAD, 0, IMG);
    let client = BlobClient::new(Arc::clone(&store), NodeId(0));
    let (blob, v) = client.upload(image.clone()).unwrap();
    (store, blob, v, image)
}

#[test]
fn concurrent_boots_read_identical_content() {
    let (store, blob, v, image) = shared_store();
    std::thread::scope(|s| {
        for i in 0..THREADS {
            let store = Arc::clone(&store);
            let image = image.clone();
            s.spawn(move || {
                let client = BlobClient::new(store, NodeId(i as u32));
                let mut b = MirrorBackend::open(client, blob, v, &Calibration::default()).unwrap();
                // Interleaved partial reads, then the whole image.
                for k in 0..8u64 {
                    let at = (k * 293_339) % (IMG - 10_000);
                    let got = b.read(at..at + 10_000).unwrap();
                    assert!(got.content_eq(&image.slice(at, at + 10_000)), "thread {i}");
                }
                let full = b.read(0..IMG).unwrap();
                assert!(full.content_eq(&image), "thread {i} full image");
            });
        }
    });
}

#[test]
fn concurrent_snapshots_commute() {
    let (store, blob, v, image) = shared_store();
    let snaps: Vec<(BlobId, Version)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|i| {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    let client = BlobClient::new(store, NodeId(i as u32));
                    let mut b =
                        MirrorBackend::open(client, blob, v, &Calibration::default()).unwrap();
                    // Every thread writes its own mark and snapshots
                    // twice, racing against all the others.
                    b.write(1000 * i as u64, Payload::from(vec![i as u8 + 1; 500]))
                        .unwrap();
                    b.snapshot().unwrap();
                    b.write(IMG / 2, Payload::from(vec![i as u8 + 1; 64]))
                        .unwrap();
                    b.snapshot().unwrap();
                    (b.blob(), b.version())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panics"))
            .collect()
    });
    // All clones are distinct and each holds exactly its own writes.
    let verifier = BlobClient::new(Arc::clone(&store), NodeId(0));
    for (i, (b, ver)) in snaps.iter().enumerate() {
        let got = verifier.read(*b, *ver, 0..IMG).unwrap();
        let expect = image
            .clone()
            .overwrite(1000 * i as u64, Payload::from(vec![i as u8 + 1; 500]))
            .overwrite(IMG / 2, Payload::from(vec![i as u8 + 1; 64]));
        assert!(
            got.content_eq(&expect),
            "snapshot {i} isolated under concurrency"
        );
    }
    // The origin is untouched.
    let orig = verifier.read(blob, v, 0..IMG).unwrap();
    assert!(orig.content_eq(&image));
    // Storage stays shared: far below one full image per snapshot.
    let stored = store.total_stored_bytes();
    assert!(
        stored < IMG + THREADS as u64 * ((3 * 64) << 10),
        "stored {stored} should be near one image"
    );
}

#[test]
fn concurrent_commits_to_one_blob_conflict_cleanly() {
    // Optimistic concurrency at the version manager: when threads race to
    // publish onto the SAME blob, exactly the losers see Conflict and no
    // committed data is lost or interleaved.
    let (store, blob, v, _image) = shared_store();
    let results: Vec<Result<Version, bff::blobseer::BlobError>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    let client = BlobClient::new(store, NodeId(i as u32));
                    client.write(blob, v, 0, Payload::from(vec![i as u8; 100]))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panics"))
            .collect()
    });
    let wins = results.iter().filter(|r| r.is_ok()).count();
    assert_eq!(wins, 1, "exactly one racer publishes version 2");
    assert!(results
        .iter()
        .filter(|r| r.is_err())
        .all(|r| matches!(r, Err(bff::blobseer::BlobError::Conflict { .. }))));
}
