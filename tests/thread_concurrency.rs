//! Real-thread concurrency over the in-process stack: many OS threads
//! booting, writing and snapshotting against one shared repository at
//! once. The simulator serializes execution, so this is the test that
//! exercises the actual lock discipline of the server state machines
//! (providers, managers, metadata shards) under parallelism.

use bff::blobseer::{BlobStore, BlobTopology};
use bff::cloud::backend::{ImageBackend, MirrorBackend};
use bff::cloud::params::Calibration;
use bff::net::{ThreadFabric, ThreadParams};
use bff::prelude::*;
use std::sync::Arc;

const IMG: u64 = 2 << 20;
const THREADS: usize = 16;

fn shared_store() -> (Arc<BlobStore>, BlobId, Version, Payload) {
    let fabric = LocalFabric::new(THREADS + 1);
    let compute: Vec<NodeId> = (0..THREADS as u32).map(NodeId).collect();
    let topo = BlobTopology::colocated(&compute, NodeId(THREADS as u32));
    let cfg = BlobConfig {
        chunk_size: 64 << 10,
        ..Default::default()
    };
    let store = BlobStore::new(cfg, topo, fabric as Arc<dyn Fabric>);
    let image = Payload::synth(0x7EAD, 0, IMG);
    let client = BlobClient::new(Arc::clone(&store), NodeId(0));
    let (blob, v) = client.upload(image.clone()).unwrap();
    (store, blob, v, image)
}

#[test]
fn concurrent_boots_read_identical_content() {
    let (store, blob, v, image) = shared_store();
    std::thread::scope(|s| {
        for i in 0..THREADS {
            let store = Arc::clone(&store);
            let image = image.clone();
            s.spawn(move || {
                let client = BlobClient::new(store, NodeId(i as u32));
                let mut b = MirrorBackend::open(client, blob, v, &Calibration::default()).unwrap();
                // Interleaved partial reads, then the whole image.
                for k in 0..8u64 {
                    let at = (k * 293_339) % (IMG - 10_000);
                    let got = b.read(at..at + 10_000).unwrap();
                    assert!(got.content_eq(&image.slice(at, at + 10_000)), "thread {i}");
                }
                let full = b.read(0..IMG).unwrap();
                assert!(full.content_eq(&image), "thread {i} full image");
            });
        }
    });
}

#[test]
fn concurrent_snapshots_commute() {
    let (store, blob, v, image) = shared_store();
    let snaps: Vec<(BlobId, Version)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|i| {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    let client = BlobClient::new(store, NodeId(i as u32));
                    let mut b =
                        MirrorBackend::open(client, blob, v, &Calibration::default()).unwrap();
                    // Every thread writes its own mark and snapshots
                    // twice, racing against all the others.
                    b.write(1000 * i as u64, Payload::from(vec![i as u8 + 1; 500]))
                        .unwrap();
                    b.snapshot().unwrap();
                    b.write(IMG / 2, Payload::from(vec![i as u8 + 1; 64]))
                        .unwrap();
                    b.snapshot().unwrap();
                    (b.blob(), b.version())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panics"))
            .collect()
    });
    // All clones are distinct and each holds exactly its own writes.
    let verifier = BlobClient::new(Arc::clone(&store), NodeId(0));
    for (i, (b, ver)) in snaps.iter().enumerate() {
        let got = verifier.read(*b, *ver, 0..IMG).unwrap();
        let expect = image
            .clone()
            .overwrite(1000 * i as u64, Payload::from(vec![i as u8 + 1; 500]))
            .overwrite(IMG / 2, Payload::from(vec![i as u8 + 1; 64]));
        assert!(
            got.content_eq(&expect),
            "snapshot {i} isolated under concurrency"
        );
    }
    // The origin is untouched.
    let orig = verifier.read(blob, v, 0..IMG).unwrap();
    assert!(orig.content_eq(&image));
    // Storage stays shared: far below one full image per snapshot.
    let stored = store.total_stored_bytes();
    assert!(
        stored < IMG + THREADS as u64 * ((3 * 64) << 10),
        "stored {stored} should be near one image"
    );
}

#[test]
fn co_located_clients_share_one_node_context() {
    // N OS threads play co-located VMs on ONE node, each with its own
    // Client, all racing reads and commits through the node's shared
    // NodeContext. Checks: content correctness under the shared cache,
    // Arc-identity of the context, the LRU capacity bound, and that the
    // aggregate hit/miss counters exactly account every chunk lookup
    // (no lost descriptors, no double counting).
    const CS: u64 = 64 << 10;
    const SHARED: u64 = 1 << 20; // 16 chunks
    const OWN: u64 = 256 << 10; // 4 chunks
    const WORKERS: usize = 8;
    let fabric = LocalFabric::new(5);
    let compute: Vec<NodeId> = (0..4).map(NodeId).collect();
    let topo = BlobTopology::colocated(&compute, NodeId(4));
    let cfg = BlobConfig {
        chunk_size: CS,
        dedup: false, // counter accounting below assumes no reuse
        ..Default::default()
    };
    let store = BlobStore::new(cfg, topo, fabric as Arc<dyn Fabric>);
    let image = Payload::synth(0xC010, 0, SHARED);
    // Stage the shared image from the service node so node 0 starts cold.
    let stage = BlobClient::new(Arc::clone(&store), NodeId(4));
    let (shared, v) = stage.upload(image.clone()).unwrap();

    std::thread::scope(|s| {
        for t in 0..WORKERS {
            let store = Arc::clone(&store);
            let image = image.clone();
            s.spawn(move || {
                let client = BlobClient::new(store, NodeId(0));
                // Everyone reads the whole shared snapshot (racing the
                // first resolver) — 16 chunk lookups each.
                let got = client.read(shared, v, 0..SHARED).unwrap();
                assert!(got.content_eq(&image), "worker {t} read torn content");
                // Everyone publishes its own blob, then reads it back —
                // 4 chunk lookups each (the commit seeds the cache, so
                // these should all be hits).
                let own = Payload::synth(0xD000 + t as u64, 0, OWN);
                let (blob, ov) = client.upload(own.clone()).unwrap();
                let got = client.read(blob, ov, 0..OWN).unwrap();
                assert!(got.content_eq(&own), "worker {t} own blob torn");
            });
        }
    });

    // All clients attached to one context.
    let ctx = store.node_context(NodeId(0));
    let other = BlobClient::new(Arc::clone(&store), NodeId(0));
    assert!(Arc::ptr_eq(&ctx, other.context()), "context not shared");

    // Counter consistency: every chunk lookup is accounted exactly once.
    let stats = ctx.stats();
    let expected = WORKERS as u64 * (SHARED / CS + OWN / CS);
    assert_eq!(
        stats.desc_hits + stats.desc_misses,
        expected,
        "hit/miss counters lost or double-counted lookups: {stats:?}"
    );
    // The shared snapshot is resolved at most once per chunk per racer
    // window; with 8 racers at least some sharing must materialize, and
    // every self-committed read is a pure hit.
    assert!(
        stats.desc_hits >= WORKERS as u64 * (OWN / CS),
        "committers must hit their own seeded entries: {stats:?}"
    );
    assert!(ctx.desc_entries() <= ctx.desc_capacity());

    // No lost descriptors: a fresh co-located client replays every
    // blob's latest snapshot without touching the metadata plane.
    let verifier = BlobClient::new(Arc::clone(&store), NodeId(0));
    verifier.read(shared, v, 0..SHARED).unwrap();
    assert_eq!(
        verifier.meta_fetch_calls(),
        0,
        "shared snapshot descriptors were lost from the node cache"
    );
}

#[test]
fn thread_fabric_stress_keeps_exact_accounting_under_real_races() {
    // The wall-clock fabric under load: many OS threads play co-located
    // VMs on ONE node's shared NodeContext while every operation pays a
    // real (fast-profile) modelled delay on the thread fabric — so the
    // interleavings differ run to run, unlike the cost-free LocalFabric
    // where most operations complete before the next thread is
    // scheduled. Content must stay torn-free and the hit/miss counters
    // must account every chunk lookup exactly once, races or not.
    const CS: u64 = 64 << 10;
    const SHARED: u64 = 1 << 20; // 16 chunks
    const OWN: u64 = 256 << 10; // 4 chunks
    const WORKERS: usize = 16;
    let fabric = ThreadFabric::new(ThreadParams::fast(5));
    let compute: Vec<NodeId> = (0..4).map(NodeId).collect();
    let topo = BlobTopology::colocated(&compute, NodeId(4));
    let cfg = BlobConfig {
        chunk_size: CS,
        dedup: false, // counter accounting below assumes no reuse
        ..Default::default()
    };
    let store = BlobStore::new(cfg, topo, Arc::clone(&fabric) as Arc<dyn Fabric>);
    let image = Payload::synth(0xFAB2, 0, SHARED);
    // Stage from the service node so node 0 starts cold.
    let stage = BlobClient::new(Arc::clone(&store), NodeId(4));
    let (shared, v) = stage.upload(image.clone()).unwrap();

    std::thread::scope(|s| {
        for t in 0..WORKERS {
            let store = Arc::clone(&store);
            let image = image.clone();
            s.spawn(move || {
                let client = BlobClient::new(store, NodeId(0));
                // Race the whole cohort through the shared snapshot —
                // 16 chunk lookups each, all contending on the node's
                // descriptor cache and the fabric's NIC lanes at once.
                let got = client.read(shared, v, 0..SHARED).unwrap();
                assert!(got.content_eq(&image), "worker {t} read torn content");
                // Publish a private blob and read it back — 4 lookups
                // each, hits via the commit-seeded cache.
                let own = Payload::synth(0xE000 + t as u64, 0, OWN);
                let (blob, ov) = client.upload(own.clone()).unwrap();
                let got = client.read(blob, ov, 0..OWN).unwrap();
                assert!(got.content_eq(&own), "worker {t} own blob torn");
            });
        }
    });
    // Drain detached fabric work before trusting any counter.
    fabric.quiesce();

    let ctx = store.node_context(NodeId(0));
    let stats = ctx.stats();
    let expected = WORKERS as u64 * (SHARED / CS + OWN / CS);
    assert_eq!(
        stats.desc_hits + stats.desc_misses,
        expected,
        "hit/miss counters lost or double-counted lookups: {stats:?}"
    );
    assert!(
        stats.desc_hits >= WORKERS as u64 * (OWN / CS),
        "committers must hit their own seeded entries: {stats:?}"
    );
    assert!(ctx.desc_entries() <= ctx.desc_capacity());
    // The modelled clock advanced: these threads really paid delays.
    assert!(fabric.now_us() > 0, "wall-clock fabric must advance time");
}

#[test]
fn lru_bound_holds_under_concurrent_version_churn() {
    // 8 threads × 24 private snapshots each churn far past a tiny
    // 8-entry cache: the bound must hold throughout and reads must stay
    // correct while entries are concurrently evicted and re-resolved.
    const CS: u64 = 64 << 10;
    const IMGS: u64 = 128 << 10;
    let fabric = LocalFabric::new(5);
    let compute: Vec<NodeId> = (0..4).map(NodeId).collect();
    let topo = BlobTopology::colocated(&compute, NodeId(4));
    let cfg = BlobConfig {
        chunk_size: CS,
        desc_cache_versions: 8,
        ..Default::default()
    };
    let store = BlobStore::new(cfg, topo, fabric as Arc<dyn Fabric>);

    std::thread::scope(|s| {
        for t in 0..8u64 {
            let store = Arc::clone(&store);
            s.spawn(move || {
                let client = BlobClient::new(store, NodeId(0));
                let (blob, mut v) = client.upload(Payload::synth(t, 0, IMGS)).unwrap();
                let mut expect = Payload::synth(t, 0, IMGS);
                for round in 0..24u64 {
                    let patch = Payload::synth(t * 1000 + round, 0, CS);
                    v = client.write(blob, v, 0, patch.clone()).unwrap();
                    expect = expect.overwrite(0, patch);
                    let got = client.read(blob, v, 0..IMGS).unwrap();
                    assert!(got.content_eq(&expect), "thread {t} round {round}");
                }
            });
        }
    });
    let ctx = store.node_context(NodeId(0));
    assert!(
        ctx.desc_entries() <= ctx.desc_capacity(),
        "LRU bound violated under churn: {} > {}",
        ctx.desc_entries(),
        ctx.desc_capacity()
    );
    assert!(
        ctx.desc_capacity() <= 8,
        "test must actually churn the bound"
    );
}

#[test]
fn concurrent_commits_to_one_blob_conflict_cleanly() {
    // Optimistic concurrency at the version manager: when threads race to
    // publish onto the SAME blob, exactly the losers see Conflict and no
    // committed data is lost or interleaved.
    let (store, blob, v, _image) = shared_store();
    let results: Vec<Result<Version, bff::blobseer::BlobError>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    let client = BlobClient::new(store, NodeId(i as u32));
                    client.write(blob, v, 0, Payload::from(vec![i as u8; 100]))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panics"))
            .collect()
    });
    let wins = results.iter().filter(|r| r.is_ok()).count();
    assert_eq!(wins, 1, "exactly one racer publishes version 2");
    assert!(results
        .iter()
        .filter(|r| r.is_err())
        .all(|r| matches!(r, Err(bff::blobseer::BlobError::Conflict { .. }))));
}
