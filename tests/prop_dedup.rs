//! Property suite for content-addressed write dedup: for random
//! write/snapshot/clone sequences, a dedup-on stack and a dedup-off
//! stack must be indistinguishable to every reader — across all three
//! replication modes — and dedup must never *increase* provider bytes
//! stored.
//!
//! Content seeds are drawn from a tiny pool and a share of the writes
//! are whole aligned chunks, so identical chunk payloads recur both
//! within one commit and across snapshots: every dedup path (intra-commit
//! collapse, digest-index reuse, reuse after clone) gets exercised.

use bff::blobseer::{BlobStore, BlobTopology, ReplicationMode};
use bff::core::{MemStore, MirrorConfig, MirroredImage};
use bff::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

const IMG: u64 = 1 << 16; // 64 KiB images keep cases fast
const CHUNK: u64 = 4 << 10;

const MODES: [ReplicationMode; 3] = [
    ReplicationMode::Sequential,
    ReplicationMode::Fanout,
    ReplicationMode::Chain,
];

fn stack(seed: u64, mode: ReplicationMode, dedup: bool) -> (BlobClient, MirroredImage) {
    let fabric = LocalFabric::new(4);
    let compute: Vec<NodeId> = (0..3).map(NodeId).collect();
    let topo = BlobTopology::colocated(&compute, NodeId(3));
    let bcfg = BlobConfig {
        chunk_size: CHUNK,
        replication: 2,
        replication_mode: mode,
        dedup,
        ..Default::default()
    };
    let store = BlobStore::new(bcfg, topo, fabric as Arc<dyn Fabric>);
    let client = BlobClient::new(store, NodeId(0));
    let (blob, v) = client.upload(Payload::synth(seed, 0, IMG)).unwrap();
    let img = MirroredImage::open(
        client.clone(),
        blob,
        v,
        Box::new(MemStore::new(IMG)),
        MirrorConfig::default(),
    )
    .unwrap();
    (client, img)
}

#[derive(Debug, Clone)]
enum Op {
    /// Write `Payload::synth(1000 + seed, 0, len)` at `offset`: equal
    /// `(seed, len)` pairs produce identical bytes wherever they land.
    Write {
        offset: u64,
        len: u64,
        seed: u64,
    },
    Snapshot,
    Clone,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Scattered writes from a 3-seed content pool.
        (0..IMG, 1..3000u64, 0..3u64).prop_map(|(o, l, s)| {
            let o = o.min(IMG - 1);
            Op::Write {
                offset: o,
                len: l.min(IMG - o).max(1),
                seed: s,
            }
        }),
        // Whole aligned chunks from the pool — the checkpoint pattern
        // that makes cross-snapshot duplicates certain.
        (0..(IMG / CHUNK), 0..3u64).prop_map(|(c, s)| Op::Write {
            offset: c * CHUNK,
            len: CHUNK,
            seed: s,
        }),
        Just(Op::Snapshot),
        Just(Op::Clone),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Dedup on/off is invisible to every reader in every replication
    /// mode, and never costs storage.
    #[test]
    fn dedup_is_invisible_and_never_increases_storage(
        base_seed in any::<u64>(),
        ops in prop::collection::vec(arb_op(), 1..10)) {
        // Six identical stacks: 3 modes × dedup {on, off}, adjacent per
        // mode (on at even index, off right after).
        let mut stacks: Vec<(bool, ReplicationMode, BlobClient, MirroredImage)> = Vec::new();
        for mode in MODES {
            for dedup in [true, false] {
                let (c, m) = stack(base_seed, mode, dedup);
                stacks.push((dedup, mode, c, m));
            }
        }
        // Drive the same sequence through all of them, recording every
        // published snapshot identity (these must stay in lockstep).
        let mut snaps: Vec<(BlobId, Version)> = Vec::new();
        for op in &ops {
            match op {
                Op::Write { offset, len, seed } => {
                    let data = Payload::synth(1000 + seed, 0, *len);
                    for (_, _, _, img) in stacks.iter_mut() {
                        img.write(*offset, data.clone()).unwrap();
                    }
                }
                Op::Snapshot => {
                    let mut ids = Vec::new();
                    for (_, _, _, img) in stacks.iter_mut() {
                        let v = img.commit().unwrap();
                        ids.push((img.blob(), v));
                    }
                    prop_assert!(
                        ids.windows(2).all(|w| w[0] == w[1]),
                        "stacks diverged in snapshot identity: {ids:?}"
                    );
                    snaps.push(ids[0]);
                }
                Op::Clone => {
                    let mut ids = Vec::new();
                    for (_, _, _, img) in stacks.iter_mut() {
                        ids.push(img.clone_image().unwrap());
                    }
                    prop_assert!(ids.windows(2).all(|w| w[0] == w[1]));
                }
            }
        }
        // The live image reads byte-identical everywhere.
        let (first, rest) = stacks.split_first_mut().unwrap();
        let reference = first.3.read(0..IMG).unwrap();
        for (dedup, mode, _, img) in rest.iter_mut() {
            let got = img.read(0..IMG).unwrap();
            prop_assert!(
                got.content_eq(&reference),
                "live image differs ({mode:?}, dedup={dedup})"
            );
        }
        // Every published snapshot reads byte-identical everywhere.
        for &(blob, v) in &snaps {
            let want = stacks[0].2.read(blob, v, 0..IMG).unwrap();
            for (dedup, mode, client, _) in &stacks[1..] {
                let got = client.read(blob, v, 0..IMG).unwrap();
                prop_assert!(
                    got.content_eq(&want),
                    "snapshot {blob:?}/{v:?} differs ({mode:?}, dedup={dedup})"
                );
            }
        }
        // Dedup never increases provider bytes stored, mode by mode.
        for pair in stacks.chunks(2) {
            let (on, off) = (&pair[0], &pair[1]);
            prop_assert!(on.0 && !off.0, "stack layout: dedup-on first");
            let (on_bytes, off_bytes) = (
                on.2.store().total_stored_bytes(),
                off.2.store().total_stored_bytes(),
            );
            prop_assert!(
                on_bytes <= off_bytes,
                "dedup increased storage under {:?}: {on_bytes} > {off_bytes}",
                on.1
            );
        }
    }
}
