//! End-to-end semantics across the whole stack: client → middleware →
//! mirroring module → versioning repository, on real bytes.

use bff::core::{Ioctl, IoctlReply};
use bff::prelude::*;

const IMG: u64 = 4 << 20;

fn cloud(nodes: u32) -> (std::sync::Arc<LocalFabric>, Cloud) {
    let fabric = LocalFabric::new(nodes as usize + 1);
    let compute: Vec<NodeId> = (0..nodes).map(NodeId).collect();
    let cloud = Cloud::new(
        fabric.clone(),
        compute,
        NodeId(nodes),
        BlobConfig {
            chunk_size: 128 << 10,
            ..Default::default()
        },
        Calibration::default(),
    );
    (fabric, cloud)
}

#[test]
fn snapshots_are_standalone_and_isolated() {
    let (_f, cloud) = cloud(6);
    let image = Payload::synth(1, 0, IMG);
    let (blob, v) = cloud.upload_image(image.clone()).unwrap();
    let nodes: Vec<NodeId> = (0..6).map(NodeId).collect();
    let mut vms = cloud.deploy(blob, v, &nodes).unwrap();

    // Every VM writes a distinct pattern at a distinct location.
    for (i, vm) in vms.iter_mut().enumerate() {
        let data = Payload::from(vec![i as u8 + 1; 1000]);
        vm.backend.write(i as u64 * 100_000, data).unwrap();
    }
    let snaps = cloud.snapshot_all(&mut vms).unwrap();

    // Pairwise isolation: snapshot i contains write i and NOT write j.
    for (i, (b, ver)) in snaps.iter().enumerate() {
        let full = cloud.download_image(*b, *ver).unwrap();
        let expect = image
            .clone()
            .overwrite(i as u64 * 100_000, Payload::from(vec![i as u8 + 1; 1000]));
        assert!(full.content_eq(&expect), "snapshot {i} isolated and exact");
    }
    // The original image is untouched by all of this.
    let orig = cloud.download_image(blob, v).unwrap();
    assert!(orig.content_eq(&image));
}

#[test]
fn repeated_global_snapshots_share_unmodified_content() {
    let (_f, cloud) = cloud(4);
    let (blob, v) = cloud.upload_image(Payload::synth(2, 0, IMG)).unwrap();
    let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
    let mut vms = cloud.deploy(blob, v, &nodes).unwrap();
    let base_stored = cloud.store().total_stored_bytes();

    let mut all_snaps = Vec::new();
    for round in 0..5u64 {
        for vm in vms.iter_mut() {
            // One chunk of fresh data per VM per round.
            vm.backend
                .write(
                    round * (128 << 10),
                    Payload::synth(100 + round, 0, 128 << 10),
                )
                .unwrap();
        }
        all_snaps.extend(cloud.snapshot_all(&mut vms).unwrap());
    }
    // 20 snapshots exist. Each round's 4 VMs write *identical* chunks
    // from different nodes: with the cluster-wide dedup index on, only
    // the first committer of each round stores bytes (5 chunks); with
    // dedup off or node-local only, every VM stores its own copy (the
    // VMs sit on distinct nodes, so the node index cannot help).
    let cfg = cloud.store().config();
    let expected_chunks: u64 = if cfg.dedup && cfg.cluster_dedup {
        5
    } else {
        4 * 5
    };
    let stored = cloud.store().total_stored_bytes();
    assert_eq!(stored - base_stored, expected_chunks * (128 << 10));
    let report = cloud.storage_report(&all_snaps);
    assert!(
        report.stored_bytes * 10 < report.naive_full_copy_bytes,
        ">90% storage saved: {report:?}"
    );
}

#[test]
fn vfs_facade_end_to_end() {
    let (_f, cloud) = cloud(2);
    let image = Payload::synth(3, 0, IMG);
    let (blob, v) = cloud.upload_image(image.clone()).unwrap();
    let mut vfs = VirtualFs::new(cloud.client(NodeId(0)), MirrorConfig::default());

    let path = bff::core::vfs::snapshot_path(blob, v);
    let fd = vfs.open(&path).unwrap();
    // POSIX-style read at an offset.
    let got = vfs.read(fd, 4096, 1000).unwrap();
    assert!(got.content_eq(&image.slice(4096, 5096)));
    // Write, then ioctl CLONE + COMMIT like the control agent would.
    vfs.write(fd, 0, Payload::from(b"#!contextualized".to_vec()))
        .unwrap();
    let IoctlReply::Cloned(new_blob) = vfs.ioctl(fd, Ioctl::Clone).unwrap() else {
        panic!("clone reply")
    };
    let IoctlReply::Committed(new_v) = vfs.ioctl(fd, Ioctl::Commit).unwrap() else {
        panic!("commit reply")
    };
    vfs.close(fd).unwrap();
    // The snapshot is visible cloud-wide as a raw image.
    let full = cloud.download_image(new_blob, new_v).unwrap();
    assert!(full
        .slice(0, 16)
        .content_eq(&Payload::from(b"#!contextualized".to_vec())));
}

#[test]
fn elastic_deployment_add_instances_mid_flight() {
    let (_f, cloud) = cloud(4);
    let (blob, v) = cloud.upload_image(Payload::synth(4, 0, IMG)).unwrap();
    let mut vms = cloud.deploy(blob, v, &[NodeId(0), NodeId(1)]).unwrap();
    vms[0]
        .backend
        .write(0, Payload::from(vec![5u8; 64]))
        .unwrap();
    // Scale out: two more instances join from the same snapshot.
    for n in [NodeId(2), NodeId(3)] {
        vms.push(cloud.add_instance(blob, v, n).unwrap());
    }
    assert_eq!(vms.len(), 4);
    // Late joiners see the pristine image, not node 0's local writes.
    let got = vms[3].backend.read(0..64).unwrap();
    assert!(got.content_eq(&Payload::synth(4, 0, 64)));
}

#[test]
fn snapshot_chain_versions_remain_readable() {
    // The manageability claim of §3.1.4: consecutive snapshots of one
    // instance are independently accessible, no backing-chain bookkeeping.
    let (_f, cloud) = cloud(2);
    let image = Payload::synth(5, 0, IMG);
    let (blob, v) = cloud.upload_image(image.clone()).unwrap();
    let mut vms = cloud.deploy(blob, v, &[NodeId(0)]).unwrap();

    let mut expected = image;
    let mut history = Vec::new();
    for round in 0..6u64 {
        let patch = Payload::synth(600 + round, 0, 5000);
        let at = round * 300_000;
        vms[0].backend.write(at, patch.clone()).unwrap();
        expected = expected.overwrite(at, patch);
        let (b, ver) = vms[0].snapshot().unwrap();
        history.push((b, ver, expected.clone()));
    }
    // Every historical snapshot still reads exactly as it was taken.
    for (b, ver, want) in &history {
        let got = cloud.download_image(*b, *ver).unwrap();
        assert!(got.content_eq(want), "history at {ver} intact");
    }
}
