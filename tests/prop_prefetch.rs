//! Property suite for the adaptive cross-VM prefetching pipeline: for
//! random boot-like read traces (plus a write/commit tail), a
//! prefetch-on stack and a prefetch-off stack must be indistinguishable
//! to every reader — across all four replication modes — and prefetch
//! must never *increase* the provider bytes a node pulls per unique
//! chunk: a chunk is fetched once (by the prefetcher or by the demand
//! path), never twice.
//!
//! The harness mirrors the multideployment shape: a *leader* VM on node
//! 0 executes the trace cold and publishes its access pattern to the
//! `PatternBoard`; a *follower* VM on node 1 then burns guest idle time
//! (which the prefetch-on stack spends on read-ahead) and replays the
//! same trace. Since the traces coincide, prediction is exact — so any
//! extra byte the follower receives with prefetch on is a pipeline bug
//! (double fetch, claim leak, cache miss-accounting), not waste.

use bff::blobseer::{BlobStore, BlobTopology, ReplicationMode};
use bff::core::{MemStore, MirrorConfig, MirroredImage};
use bff::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

const IMG: u64 = 1 << 16; // 64 KiB images keep cases fast
const CHUNK: u64 = 4 << 10;

const MODES: [ReplicationMode; 4] = [
    ReplicationMode::Sequential,
    ReplicationMode::Fanout,
    ReplicationMode::Chain,
    ReplicationMode::ChainPipelined,
];

struct Stack {
    fabric: Arc<LocalFabric>,
    client: BlobClient,
    blob: BlobId,
    version: Version,
}

fn stack(seed: u64, mode: ReplicationMode, prefetch: bool) -> Stack {
    let fabric = LocalFabric::new(4);
    let compute: Vec<NodeId> = (0..3).map(NodeId).collect();
    let topo = BlobTopology::colocated(&compute, NodeId(3));
    let bcfg = BlobConfig {
        chunk_size: CHUNK,
        replication: 2,
        replication_mode: mode,
        prefetch,
        // The received-bytes bound below pins the raw read-ahead
        // mechanics; the confidence filter's confirmation publishes
        // would add control traffic to the follower (it has its own
        // unit and sweep coverage).
        prefetch_min_publishers: 1,
        ..Default::default()
    };
    let store = BlobStore::new(bcfg, topo, fabric.clone() as Arc<dyn Fabric>);
    let client = BlobClient::new(store, NodeId(0));
    let (blob, version) = client.upload(Payload::synth(seed, 0, IMG)).unwrap();
    Stack {
        fabric,
        client,
        blob,
        version,
    }
}

fn mirror_on(stack: &Stack, node: NodeId) -> MirroredImage {
    MirroredImage::open(
        BlobClient::new(Arc::clone(stack.client.store()), node),
        stack.blob,
        stack.version,
        Box::new(MemStore::new(IMG)),
        MirrorConfig::default(),
    )
    .unwrap()
}

/// Drain the predicted read-ahead: each call is one guest idle burst.
/// On the prefetch-off stack `idle` consumes nothing and this is a
/// no-op, exactly like a hypervisor whose module has no prefetcher.
fn drain_idle(img: &mut MirroredImage) {
    let mut rounds = 0;
    while img.poke_prefetch() {
        rounds += 1;
        assert!(rounds < 1000, "idle prefetch failed to terminate");
    }
}

#[derive(Debug, Clone)]
struct ReadOp {
    offset: u64,
    len: u64,
}

fn arb_read() -> impl Strategy<Value = ReadOp> {
    (0..IMG, 1..20_000u64).prop_map(|(o, l)| {
        let o = o.min(IMG - 1);
        ReadOp {
            offset: o,
            len: l.min(IMG - o).max(1),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Prefetch on/off is invisible to every reader in every
    /// replication mode, and the follower node never receives more
    /// bytes with prefetch on than off (no chunk is fetched twice).
    #[test]
    fn prefetch_is_invisible_and_never_double_fetches(
        base_seed in any::<u64>(),
        reads in prop::collection::vec(arb_read(), 1..8),
        write_at in 0..(IMG / CHUNK),
        write_seed in 0..3u64) {
        let follower = NodeId(1);
        let mut received = Vec::new();
        let mut snapshots = Vec::new();
        let mut live_images = Vec::new();
        for mode in MODES {
            let mut per_mode = Vec::new();
            for prefetch in [true, false] {
                let s = stack(base_seed, mode, prefetch);
                // Leader boots cold on node 0, publishing its pattern.
                let mut leader = mirror_on(&s, NodeId(0));
                for r in &reads {
                    leader.read(r.offset..r.offset + r.len).unwrap();
                }
                // Follower: idle (read-ahead window), then the same
                // trace, then a private write + snapshot.
                let mut img = mirror_on(&s, follower);
                s.fabric.stats().reset();
                drain_idle(&mut img);
                let mut outputs = Vec::new();
                for r in &reads {
                    outputs.push(img.read(r.offset..r.offset + r.len).unwrap());
                }
                let node_received = s.fabric.stats().node(follower).received;
                img.write(
                    write_at * CHUNK,
                    Payload::synth(2000 + write_seed, 0, CHUNK),
                )
                .unwrap();
                let v = img.commit().unwrap();
                let snap = s.client.read(img.blob(), v, 0..IMG).unwrap();
                let live = img.read(0..IMG).unwrap();
                let stats = s.client.store().node_context(follower).prefetch_stats();
                per_mode.push((prefetch, outputs, node_received, stats));
                snapshots.push((mode, prefetch, snap));
                live_images.push((mode, prefetch, live));
            }
            received.push((mode, per_mode));
        }

        // 1. Every read and every snapshot is byte-identical across all
        //    (mode, prefetch) combinations.
        let reference_reads = &received[0].1[0].1;
        for (mode, per_mode) in &received {
            for (prefetch, outputs, _, _) in per_mode {
                for (i, (got, want)) in outputs.iter().zip(reference_reads).enumerate() {
                    prop_assert!(
                        got.content_eq(want),
                        "read {i} differs ({mode:?}, prefetch={prefetch})"
                    );
                }
            }
        }
        let (_, _, ref_snap) = &snapshots[0];
        for (mode, prefetch, snap) in &snapshots[1..] {
            prop_assert!(
                snap.content_eq(ref_snap),
                "snapshot differs ({mode:?}, prefetch={prefetch})"
            );
        }
        let (_, _, ref_live) = &live_images[0];
        for (mode, prefetch, live) in &live_images[1..] {
            prop_assert!(
                live.content_eq(ref_live),
                "live image differs ({mode:?}, prefetch={prefetch})"
            );
        }

        // 2. Exact prediction ⇒ the follower never pulls more bytes
        //    with prefetch on (each unique chunk crosses the wire at
        //    most once, prefetched or demanded — never both), and the
        //    prefetch accounting balances.
        for (mode, per_mode) in &received {
            let on = per_mode.iter().find(|(p, ..)| *p).unwrap();
            let off = per_mode.iter().find(|(p, ..)| !*p).unwrap();
            prop_assert!(
                on.2 <= off.2,
                "{mode:?}: prefetch-on follower received {} > {} bytes",
                on.2,
                off.2
            );
            let s = &on.3;
            prop_assert!(s.hits <= s.prefetched_chunks);
            prop_assert!(
                s.hits + s.wasted_chunks <= s.prefetched_chunks,
                "{mode:?}: accounting leak: {s:?}"
            );
            prop_assert_eq!(
                off.3,
                PrefetchStats::default(),
                "prefetch-off stack must record nothing"
            );
        }
    }
}
