//! Property-based integration tests: random workloads against reference
//! models, across the full mirror + repository stack.

use bff::blobseer::{BlobStore, BlobTopology};
use bff::core::{MemStore, MirrorConfig, MirroredImage};
use bff::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

const IMG: u64 = 1 << 16; // 64 KiB images keep cases fast
const CHUNK: u64 = 4 << 10;

fn fresh_mirror(seed: u64, cfg: MirrorConfig) -> (BlobClient, MirroredImage, Vec<u8>) {
    let fabric = LocalFabric::new(4);
    let compute: Vec<NodeId> = (0..3).map(NodeId).collect();
    let topo = BlobTopology::colocated(&compute, NodeId(3));
    let bcfg = BlobConfig {
        chunk_size: CHUNK,
        ..Default::default()
    };
    let store = BlobStore::new(bcfg, topo, fabric as Arc<dyn Fabric>);
    let client = BlobClient::new(store, NodeId(0));
    let image = Payload::synth(seed, 0, IMG);
    let (blob, v) = client.upload(image.clone()).unwrap();
    let img =
        MirroredImage::open(client.clone(), blob, v, Box::new(MemStore::new(IMG)), cfg).unwrap();
    (client, img, image.materialize())
}

#[derive(Debug, Clone)]
enum Op {
    Read(u64, u64),
    Write(u64, u64, u64), // offset, len, content seed
    Commit,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..IMG, 1..3000u64)
            .prop_map(|(o, l)| Op::Read(o.min(IMG - 1), l.min(IMG - o.min(IMG - 1)).max(1))),
        (0..IMG, 1..3000u64, any::<u64>()).prop_map(|(o, l, s)| Op::Write(
            o.min(IMG - 1),
            l.min(IMG - o.min(IMG - 1)).max(1),
            s
        )),
        Just(Op::Commit),
    ]
}

fn arb_cfg() -> impl Strategy<Value = MirrorConfig> {
    (any::<bool>(), any::<bool>()).prop_map(|(prefetch, gap)| MirrorConfig {
        prefetch_whole_chunks: prefetch,
        gap_fill: gap,
        ..MirrorConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under any strategy combination, mirror reads always return the
    /// model content, and committed snapshots decode to the model too.
    #[test]
    fn mirror_matches_model(seed in any::<u64>(), cfg in arb_cfg(),
                            ops in prop::collection::vec(arb_op(), 1..30)) {
        let (client, mut img, mut model) = fresh_mirror(seed, cfg);
        let blob_before = img.blob();
        for op in ops {
            match op {
                Op::Read(o, l) => {
                    let got = img.read(o..o + l).unwrap();
                    prop_assert_eq!(got.materialize(), &model[o as usize..(o + l) as usize]);
                }
                Op::Write(o, l, s) => {
                    let data = Payload::synth(s, o, l);
                    model.splice(o as usize..(o + l) as usize, data.materialize());
                    img.write(o, data).unwrap();
                }
                Op::Commit => {
                    let v = img.commit().unwrap();
                    let snap = client.read(blob_before, v, 0..IMG).unwrap();
                    prop_assert_eq!(snap.materialize(), model.clone(),
                        "committed snapshot equals the model");
                }
            }
        }
        // Whatever happened, a full read equals the model.
        let full = img.read(0..IMG).unwrap();
        prop_assert_eq!(full.materialize(), model);
        // And the single-region invariant holds when both strategies are on.
        if cfg.prefetch_whole_chunks && cfg.gap_fill {
            img.chunk_map().check_single_region_invariant().map_err(|e| {
                TestCaseError::fail(format!("invariant: {e}"))
            })?;
        }
    }

    /// Snapshots are immutable history: after arbitrary further writes
    /// and commits, every previously committed version still reads as it
    /// did at commit time.
    #[test]
    fn snapshot_history_immutable(seed in any::<u64>(),
                                  rounds in prop::collection::vec((0..IMG, 1..2000u64, any::<u64>()), 1..6)) {
        let (client, mut img, base) = fresh_mirror(seed, MirrorConfig::default());
        let blob = img.blob();
        let mut model = base;
        let mut history: Vec<(bff::blobseer::Version, Vec<u8>)> = Vec::new();
        for (o, l, s) in rounds {
            let o = o.min(IMG - 1);
            let l = l.min(IMG - o).max(1);
            let data = Payload::synth(s, o, l);
            model.splice(o as usize..(o + l) as usize, data.materialize());
            img.write(o, data).unwrap();
            let v = img.commit().unwrap();
            history.push((v, model.clone()));
        }
        for (v, want) in &history {
            let got = client.read(blob, *v, 0..IMG).unwrap();
            prop_assert_eq!(&got.materialize(), want, "version {} intact", v);
        }
    }

    /// Clones diverge without ever affecting their origin.
    #[test]
    fn clones_never_alias(seed in any::<u64>(),
                          writes in prop::collection::vec((0..IMG, 1..2000u64), 1..5)) {
        let (client, mut img, base) = fresh_mirror(seed, MirrorConfig::default());
        let origin = img.blob();
        let origin_v = img.base_version();
        img.clone_image().unwrap();
        for (i, (o, l)) in writes.into_iter().enumerate() {
            let o = o.min(IMG - 1);
            let l = l.min(IMG - o).max(1);
            img.write(o, Payload::synth(7000 + i as u64, o, l)).unwrap();
            img.commit().unwrap();
        }
        let orig = client.read(origin, origin_v, 0..IMG).unwrap();
        prop_assert_eq!(orig.materialize(), base, "origin untouched by clone activity");
    }
}
