//! Property suite for snapshot garbage collection: for random
//! write/snapshot/clone/delete sequences, deleting snapshots must never
//! change a single byte of any *surviving* snapshot — across all four
//! replication modes × dedup on/off — deleted snapshots must stop
//! resolving, and rewriting content identical to reclaimed chunks must
//! round-trip byte-identically (the stale-index self-heal path).
//!
//! Content seeds are drawn from a tiny pool, so deleted chunk payloads
//! recur in later writes: every delete→rewrite interleaving the ops can
//! express gets exercised, with the digest indexes (node and cluster)
//! carrying entries for reclaimed chunks into subsequent commits.

use bff::blobseer::{BlobStore, BlobTopology, ReplicationMode};
use bff::core::{MemStore, MirrorConfig, MirroredImage};
use bff::prelude::*;
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

const IMG: u64 = 1 << 16; // 64 KiB images keep cases fast
const CHUNK: u64 = 4 << 10;

const MODES: [ReplicationMode; 4] = [
    ReplicationMode::Sequential,
    ReplicationMode::Fanout,
    ReplicationMode::Chain,
    ReplicationMode::ChainPipelined,
];

fn stack(seed: u64, mode: ReplicationMode, dedup: bool) -> (BlobClient, MirroredImage) {
    let fabric = LocalFabric::new(4);
    let compute: Vec<NodeId> = (0..3).map(NodeId).collect();
    let topo = BlobTopology::colocated(&compute, NodeId(3));
    let bcfg = BlobConfig {
        chunk_size: CHUNK,
        replication: 2,
        replication_mode: mode,
        dedup,
        // The cluster index rides along whenever dedup is on, so GC's
        // index evictions and the rewrite self-heal cover it too.
        cluster_dedup: dedup,
        ..Default::default()
    };
    let store = BlobStore::new(bcfg, topo, fabric as Arc<dyn Fabric>);
    let client = BlobClient::new(store, NodeId(0));
    let (blob, v) = client.upload(Payload::synth(seed, 0, IMG)).unwrap();
    let img = MirroredImage::open(
        client.clone(),
        blob,
        v,
        Box::new(MemStore::new(IMG)),
        MirrorConfig::default(),
    )
    .unwrap();
    (client, img)
}

#[derive(Debug, Clone)]
enum Op {
    /// Write `Payload::synth(1000 + seed, 0, len)` at `offset`: equal
    /// `(seed, len)` pairs produce identical bytes wherever they land —
    /// including bytes a delete reclaimed earlier.
    Write {
        offset: u64,
        len: u64,
        seed: u64,
    },
    Snapshot,
    Clone,
    /// Delete the `nth` (mod live count) still-live published snapshot
    /// that is not the live image's current base.
    Delete {
        nth: usize,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..IMG, 1..3000u64, 0..3u64).prop_map(|(o, l, s)| {
            let o = o.min(IMG - 1);
            Op::Write {
                offset: o,
                len: l.min(IMG - o).max(1),
                seed: s,
            }
        }),
        // Whole aligned chunks from the pool — the checkpoint pattern
        // that makes delete→rewrite duplicates certain.
        (0..(IMG / CHUNK), 0..3u64).prop_map(|(c, s)| Op::Write {
            offset: c * CHUNK,
            len: CHUNK,
            seed: s,
        }),
        Just(Op::Snapshot),
        Just(Op::Clone),
        (0..64usize).prop_map(|nth| Op::Delete { nth }),
        (0..64usize).prop_map(|nth| Op::Delete { nth }),
    ]
}

/// One published snapshot tracked by the model.
struct Snap {
    blob: BlobId,
    version: Version,
    expect: Payload,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Deleting snapshots frees only unreachable bytes: every surviving
    /// snapshot stays byte-identical through arbitrary delete
    /// interleavings, deleted snapshots stop resolving, and rewrites of
    /// reclaimed content round-trip — in every replication mode, with
    /// and without dedup.
    #[test]
    fn gc_preserves_survivors_and_roundtrips_rewrites(
        base_seed in any::<u64>(),
        ops in prop::collection::vec(arb_op(), 1..12)) {
        // Eight identical stacks: 4 modes × dedup {on, off}.
        let mut stacks: Vec<(bool, ReplicationMode, BlobClient, MirroredImage)> = Vec::new();
        for mode in MODES {
            for dedup in [true, false] {
                let (c, m) = stack(base_seed, mode, dedup);
                stacks.push((dedup, mode, c, m));
            }
        }
        // The model: live image contents plus every published snapshot
        // (identity and expected bytes), with deletions tracked.
        let mut live = Payload::synth(base_seed, 0, IMG);
        let mut snaps: Vec<Snap> = Vec::new();
        let mut recorded: HashSet<(BlobId, Version)> = HashSet::new();
        let mut deleted: Vec<Snap> = Vec::new();
        let mut deletes_ran = 0usize;

        for op in &ops {
            match op {
                Op::Write { offset, len, seed } => {
                    let data = Payload::synth(1000 + seed, 0, *len);
                    for (_, _, _, img) in stacks.iter_mut() {
                        img.write(*offset, data.clone()).unwrap();
                    }
                    live = live.overwrite(*offset, data);
                }
                Op::Snapshot => {
                    let mut ids = Vec::new();
                    for (_, _, _, img) in stacks.iter_mut() {
                        let v = img.commit().unwrap();
                        ids.push((img.blob(), v));
                    }
                    prop_assert!(
                        ids.windows(2).all(|w| w[0] == w[1]),
                        "stacks diverged in snapshot identity: {ids:?}"
                    );
                    // A commit with nothing dirty republishes the same
                    // identity; track each snapshot once.
                    if recorded.insert(ids[0]) {
                        snaps.push(Snap {
                            blob: ids[0].0,
                            version: ids[0].1,
                            expect: live.clone(),
                        });
                    }
                }
                Op::Clone => {
                    let mut ids = Vec::new();
                    for (_, _, _, img) in stacks.iter_mut() {
                        ids.push(img.clone_image().unwrap());
                    }
                    prop_assert!(ids.windows(2).all(|w| w[0] == w[1]));
                }
                Op::Delete { nth } => {
                    // Victims: live snapshots that are not any stack's
                    // current base (deleting the base the live image
                    // commits onto is a middleware error, not a GC case).
                    let base = (stacks[0].3.blob(), stacks[0].3.base_version());
                    let victims: Vec<usize> = (0..snaps.len())
                        .filter(|&i| (snaps[i].blob, snaps[i].version) != base)
                        .collect();
                    if victims.is_empty() {
                        continue;
                    }
                    let at = victims[nth % victims.len()];
                    let snap = snaps.remove(at);
                    for (dedup, mode, client, _) in stacks.iter() {
                        let report = client
                            .delete_snapshot(snap.blob, snap.version)
                            .unwrap_or_else(|e| {
                                panic!("delete failed ({mode:?}, dedup={dedup}): {e}")
                            });
                        prop_assert_eq!(report.deleted_versions, 1);
                    }
                    deleted.push(snap);
                    deletes_ran += 1;
                    // The GC invariant, checked at every delete: no
                    // surviving snapshot lost a byte, in any stack.
                    for snap in &snaps {
                        for (dedup, mode, client, _) in stacks.iter() {
                            let got = client.read(snap.blob, snap.version, 0..IMG).unwrap();
                            prop_assert!(
                                got.content_eq(&snap.expect),
                                "survivor {:?}/{:?} corrupted by GC ({mode:?}, dedup={dedup})",
                                snap.blob,
                                snap.version
                            );
                        }
                    }
                }
            }
        }

        // Deleted snapshots are gone for good, in every stack.
        for snap in &deleted {
            for (dedup, mode, client, _) in stacks.iter() {
                prop_assert!(
                    client.read(snap.blob, snap.version, 0..IMG).is_err(),
                    "deleted {:?}/{:?} still readable ({mode:?}, dedup={dedup})",
                    snap.blob,
                    snap.version
                );
            }
        }

        // Explicit delete→rewrite round-trip: re-commit pool content
        // (bytes that deletes may have reclaimed and whose index entries
        // may be stale) and verify every stack reads it back exactly.
        let rewrite = Payload::synth(1000, 0, CHUNK);
        let mut ids = Vec::new();
        for (_, _, _, img) in stacks.iter_mut() {
            img.write(0, rewrite.clone()).unwrap();
            let v = img.commit().unwrap();
            ids.push((img.blob(), v));
        }
        prop_assert!(ids.windows(2).all(|w| w[0] == w[1]));
        live = live.overwrite(0, rewrite);
        for (dedup, mode, client, _) in stacks.iter() {
            let got = client.read(ids[0].0, ids[0].1, 0..IMG).unwrap();
            prop_assert!(
                got.content_eq(&live),
                "post-delete rewrite differs ({mode:?}, dedup={dedup}, \
                 {deletes_ran} deletes ran)"
            );
        }

        // The live image itself reads byte-identical everywhere.
        let (first, rest) = stacks.split_first_mut().unwrap();
        let reference = first.3.read(0..IMG).unwrap();
        prop_assert!(reference.content_eq(&live), "model diverged from stack");
        for (dedup, mode, _, img) in rest.iter_mut() {
            let got = img.read(0..IMG).unwrap();
            prop_assert!(
                got.content_eq(&reference),
                "live image differs ({mode:?}, dedup={dedup})"
            );
        }
    }
}
