//! Failure injection: fail-stop provider losses against the replication
//! knob (§3.1.3: "chunks can be replicated on different local disks" for
//! availability and fault tolerance) — including losses of *deduped*
//! chunks whose refcounted replicas are shared by several blobs.

use bff::blobseer::{BlobStore, BlobTopology, ChunkId};
use bff::cloud::backend::{BackendError, ImageBackend, MirrorBackend};
use bff::cloud::params::Calibration;
use bff::prelude::*;
use std::sync::Arc;

const IMG: u64 = 2 << 20;

fn setup(replication: usize) -> (Arc<LocalFabric>, BlobClient, BlobId, Version) {
    let fabric = LocalFabric::new(7);
    let compute: Vec<NodeId> = (0..6).map(NodeId).collect();
    let topo = BlobTopology::colocated(&compute, NodeId(6));
    let cfg = BlobConfig {
        chunk_size: 64 << 10,
        replication,
        ..Default::default()
    };
    let store = BlobStore::new(cfg, topo, fabric.clone() as Arc<dyn Fabric>);
    let client = BlobClient::new(store, NodeId(0));
    let (blob, v) = client.upload(Payload::synth(0xFA11, 0, IMG)).unwrap();
    (fabric, client, blob, v)
}

#[test]
fn replicated_deployment_survives_one_provider_loss() {
    let (fabric, client, blob, v) = setup(2);
    fabric.fail_node(NodeId(3));
    // A VM on node 0 boots the whole image through the mirror.
    let mut backend = MirrorBackend::open(client, blob, v, &Calibration::default()).unwrap();
    let got = backend.read(0..IMG).unwrap();
    assert!(got.content_eq(&Payload::synth(0xFA11, 0, IMG)));
}

#[test]
fn replicated_deployment_survives_any_single_loss() {
    for victim in 1..6u32 {
        let (fabric, client, blob, v) = setup(2);
        fabric.fail_node(NodeId(victim));
        let mut backend = MirrorBackend::open(client, blob, v, &Calibration::default()).unwrap();
        let got = backend.read(0..IMG).unwrap();
        assert!(
            got.content_eq(&Payload::synth(0xFA11, 0, IMG)),
            "victim {victim}"
        );
    }
}

#[test]
fn two_losses_defeat_two_replicas_somewhere() {
    let (fabric, client, blob, v) = setup(2);
    // Adjacent providers hold both replicas of some chunks (consecutive
    // placement), so losing two adjacent nodes loses data.
    fabric.fail_node(NodeId(2));
    fabric.fail_node(NodeId(3));
    let mut backend = MirrorBackend::open(client, blob, v, &Calibration::default()).unwrap();
    let err = backend.read(0..IMG).unwrap_err();
    assert!(matches!(err, BackendError::Blob(_)), "unexpected: {err}");
}

#[test]
fn three_replicas_survive_two_losses() {
    let (fabric, client, blob, v) = setup(3);
    fabric.fail_node(NodeId(2));
    fabric.fail_node(NodeId(3));
    let mut backend = MirrorBackend::open(client, blob, v, &Calibration::default()).unwrap();
    assert!(backend.read(0..IMG).is_ok());
}

#[test]
fn unreplicated_loss_is_detected_not_silent() {
    let (fabric, client, blob, v) = setup(1);
    fabric.fail_node(NodeId(1));
    let mut backend = MirrorBackend::open(client, blob, v, &Calibration::default()).unwrap();
    // Some chunk lived only on node 1: the read must error, never return
    // wrong bytes.
    let result = backend.read(0..IMG);
    assert!(result.is_err());
}

#[test]
fn recovery_restores_service() {
    let (fabric, client, blob, v) = setup(1);
    fabric.fail_node(NodeId(1));
    let mut backend =
        MirrorBackend::open(client.clone(), blob, v, &Calibration::default()).unwrap();
    assert!(backend.read(0..IMG).is_err());
    fabric.recover_node(NodeId(1));
    let got = backend.read(0..IMG).unwrap();
    assert!(got.content_eq(&Payload::synth(0xFA11, 0, IMG)));
}

/// A deployment with dedup forced on (tests must not depend on the
/// `BFF_DEDUP` environment default) and replicated chunks.
fn setup_dedup() -> (Arc<LocalFabric>, BlobClient) {
    let fabric = LocalFabric::new(7);
    let compute: Vec<NodeId> = (0..6).map(NodeId).collect();
    let topo = BlobTopology::colocated(&compute, NodeId(6));
    let cfg = BlobConfig {
        chunk_size: 64 << 10,
        replication: 2,
        dedup: true,
        ..Default::default()
    };
    let store = BlobStore::new(cfg, topo, fabric.clone() as Arc<dyn Fabric>);
    (fabric, BlobClient::new(store, NodeId(0)))
}

/// Providers currently holding `id`, with their refcounts.
fn holders(client: &BlobClient, id: ChunkId) -> Vec<(NodeId, u64)> {
    client
        .store()
        .topology()
        .providers
        .iter()
        .filter_map(|&p| client.store().providers().refcount(p, id).map(|r| (p, r)))
        .collect()
}

#[test]
fn deduped_shared_chunk_fails_over_to_surviving_replica() {
    // Two blobs share one refcounted chunk through the digest index;
    // a provider holding it dies mid-run. Readers of the *other* blob —
    // which never pushed the bytes itself — must fail over to the
    // surviving replica.
    const CS: u64 = 64 << 10;
    const IMG2: u64 = 8 * CS;
    let (fabric, client) = setup_dedup();
    let (a, va) = client.upload(Payload::synth(0xA11CE, 0, IMG2)).unwrap(); // ids 1..=8
    let x = Payload::synth(0xDD, 0, CS);
    let va2 = client.write_chunks(a, va, vec![(0, x.clone())]).unwrap(); // id 9

    // Blob B commits the same content: reuse, no new replicas.
    let b = client.create_blob(IMG2).unwrap();
    let vb = client
        .write_chunks(b, Version(0), vec![(5, x.clone())])
        .unwrap();
    let shared = ChunkId(9);
    let held = holders(&client, shared);
    assert_eq!(held.len(), 2, "two replicas of the shared chunk: {held:?}");
    assert!(
        held.iter().all(|&(_, r)| r == 2),
        "both replicas carry both blobs' references: {held:?}"
    );

    // Kill one replica holder mid-run.
    fabric.fail_node(held[0].0);

    // A reader on a fresh node (cold cache, no dedup knowledge) still
    // reads both blobs byte-exactly through the survivor.
    let reader = BlobClient::new(Arc::clone(client.store()), NodeId(3));
    let got = reader.read(b, vb, 5 * CS..6 * CS).unwrap();
    assert!(
        got.content_eq(&x),
        "blob B must fail over on the shared chunk"
    );
    let got = reader.read(a, va2, 0..CS).unwrap();
    assert!(got.content_eq(&x), "blob A likewise");

    // And with the survivor also gone, the loss is detected, not silent.
    fabric.fail_node(held[1].0);
    let fresh = BlobClient::new(Arc::clone(client.store()), NodeId(4));
    assert!(fresh.read(b, vb, 5 * CS..6 * CS).is_err());
}

#[test]
fn dedup_after_replica_loss_reuses_only_survivors() {
    // A provider dies *between* two deduped commits: the next
    // commit-by-reference must validate replicas and publish only the
    // survivor — never a descriptor pointing at the dead copy only.
    const CS: u64 = 64 << 10;
    let (fabric, client) = setup_dedup();
    let (a, va) = client.upload(Payload::synth(0xBEEF, 0, 4 * CS)).unwrap(); // ids 1..=4
    let x = Payload::synth(0xEE, 0, CS);
    client.write_chunks(a, va, vec![(0, x.clone())]).unwrap(); // id 5
    let shared = ChunkId(5);
    let held = holders(&client, shared);
    fabric.fail_node(held[0].0);

    let b = client.create_blob(4 * CS).unwrap();
    let vb = client
        .write_chunks(b, Version(0), vec![(2, x.clone())])
        .unwrap();
    // The reuse retained only on the survivor.
    let held_after = holders(&client, shared);
    let survivor = held[1].0;
    assert!(held_after.contains(&(survivor, 2)), "{held_after:?}");
    // Readable even though the preferred replica may be the dead one.
    let reader = BlobClient::new(Arc::clone(client.store()), NodeId(5));
    let got = reader.read(b, vb, 2 * CS..3 * CS).unwrap();
    assert!(got.content_eq(&x));
}

#[test]
fn refcounts_never_underflow_on_repeated_rollback_and_release() {
    const CS: u64 = 64 << 10;
    let (_fabric, client) = setup_dedup();
    let (a, va) = client.upload(Payload::synth(0xF00D, 0, 4 * CS)).unwrap();
    let x = Payload::synth(0x77, 0, CS);
    let va2 = client.write_chunks(a, va, vec![(0, x.clone())]).unwrap(); // id 5
    let shared = ChunkId(5);
    let before = holders(&client, shared);

    // Two successive stale-base commits dedup onto the chunk, then lose
    // the publish race: each rollback releases exactly its own
    // references — never the published snapshot's.
    for _ in 0..2 {
        let err = client
            .write_chunks(a, va, vec![(1, x.clone())])
            .unwrap_err();
        assert!(matches!(err, BlobError::Conflict { .. }));
        assert_eq!(holders(&client, shared), before, "rollback must be exact");
    }
    let got = client.read(a, va2, 0..CS).unwrap();
    assert!(got.content_eq(&x), "survived double rollback");

    // API-level double-release storm on a scratch chunk: the counters
    // saturate at removal and every further release is a no-op.
    let store = client.store();
    let scratch = ChunkId(9_999);
    let node = NodeId(1);
    let stored_before = store.total_stored_bytes();
    store.providers().put(node, scratch, Payload::zeros(1024));
    assert!(store.providers().retain(node, scratch));
    assert!(store.providers().release(node, scratch)); // 2 → 1
    assert!(store.providers().release(node, scratch)); // 1 → 0, removed
    for _ in 0..3 {
        assert!(
            !store.providers().release(node, scratch),
            "must not underflow"
        );
    }
    assert_eq!(store.providers().refcount(node, scratch), None);
    assert_eq!(
        store.total_stored_bytes(),
        stored_before,
        "aggregate byte counter drifted through the release storm"
    );
}

/// A deployment with prefetch forced on (tests must not depend on the
/// `BFF_PREFETCH` environment default). Metadata and managers live on
/// the service node so that failing a provider kills only its chunk
/// store — these tests isolate the *data-plane* failover of the
/// prefetch pipeline.
fn setup_prefetch(
    replication: usize,
) -> (Arc<LocalFabric>, Arc<BlobStore>, BlobId, Version, Payload) {
    let fabric = LocalFabric::new(7);
    let compute: Vec<NodeId> = (0..6).map(NodeId).collect();
    let topo = BlobTopology {
        vmanager: NodeId(6),
        pmanager: NodeId(6),
        metadata: vec![NodeId(6)],
        providers: compute,
    };
    let cfg = BlobConfig {
        chunk_size: 64 << 10,
        replication,
        prefetch: true,
        // These tests pin exact transfer counts of the read-ahead
        // mechanics; the confidence filter's confirmation publishes
        // would shift them (it has its own tests).
        prefetch_min_publishers: 1,
        ..Default::default()
    };
    let store = BlobStore::new(cfg, topo, fabric.clone() as Arc<dyn Fabric>);
    let image = Payload::synth(0xFE7C, 0, IMG);
    let client = BlobClient::new(Arc::clone(&store), NodeId(0));
    let (blob, v) = client.upload(image.clone()).unwrap();
    // The leader VM on node 0 boots the image and publishes its access
    // pattern to the board.
    let mut leader = MirrorBackend::open(client, blob, v, &Calibration::default()).unwrap();
    leader.read(0..IMG).unwrap();
    (fabric, store, blob, v, image)
}

#[test]
fn prefetch_fails_over_when_provider_dies_before_read_ahead() {
    // A provider dies while the follower's read-ahead is in flight
    // (fail-stop before the prefetch step): the prefetcher must fail
    // over per chunk like the demand path, land everything off the
    // surviving replicas, and account nothing twice.
    let (fabric, store, blob, v, image) = setup_prefetch(2);
    let follower = NodeId(1);
    let mut backend = MirrorBackend::open(
        BlobClient::new(Arc::clone(&store), follower),
        blob,
        v,
        &Calibration::default(),
    )
    .unwrap();
    fabric.fail_node(NodeId(3));
    while backend.poke_prefetch() {}
    let stats = store.node_context(follower).prefetch_stats();
    let total_chunks = IMG / (64 << 10);
    assert_eq!(
        stats.prefetched_chunks, total_chunks,
        "every chunk must land via failover"
    );
    // The demand replay is served entirely from the cache — correct
    // bytes, no double fetch, exact accounting.
    let transfers = fabric.stats().transfer_count();
    let got = backend.read(0..IMG).unwrap();
    assert!(got.content_eq(&image));
    assert_eq!(fabric.stats().transfer_count(), transfers);
    let stats = store.node_context(follower).prefetch_stats();
    assert_eq!(stats.hits, total_chunks);
    assert_eq!(stats.prefetched_chunks, total_chunks, "no double count");
    assert_eq!(stats.wasted_chunks, 0);
}

#[test]
fn unreplicated_prefetch_skips_lost_chunks_and_demand_still_errors() {
    // Replication 1 and a dead provider: the prefetcher must skip that
    // provider's chunks (best-effort, no error, no phantom cache
    // entries), and the demand read must surface the same loss it would
    // have surfaced without prefetching — never wrong bytes.
    let (fabric, store, blob, v, _image) = setup_prefetch(1);
    let follower = NodeId(1);
    let mut backend = MirrorBackend::open(
        BlobClient::new(Arc::clone(&store), follower),
        blob,
        v,
        &Calibration::default(),
    )
    .unwrap();
    fabric.fail_node(NodeId(2));
    while backend.poke_prefetch() {}
    let stats = store.node_context(follower).prefetch_stats();
    let total_chunks = IMG / (64 << 10);
    assert!(
        stats.prefetched_chunks < total_chunks,
        "the dead provider's chunks cannot land"
    );
    assert!(stats.prefetched_chunks > 0, "the rest still lands");
    let result = backend.read(0..IMG);
    assert!(result.is_err(), "the loss must not be masked");
    // Recovery: the skipped chunks arrive on demand, byte-correct, and
    // the prefetcher never re-fetches what already landed.
    fabric.recover_node(NodeId(2));
    let got = backend.read(0..IMG).unwrap();
    assert!(got.content_eq(&Payload::synth(0xFE7C, 0, IMG)));
    let after = store.node_context(follower).prefetch_stats();
    assert_eq!(
        after.prefetched_chunks, stats.prefetched_chunks,
        "demand recovery must not be billed as prefetch"
    );
}

#[test]
fn prefetched_cache_serves_reads_through_total_provider_loss() {
    // Once the read-ahead landed, the node-shared cache is local state:
    // even losing every provider holding a chunk cannot un-serve it —
    // the same availability a mirror's local store gives demand reads.
    let (fabric, store, blob, v, image) = setup_prefetch(2);
    let follower = NodeId(1);
    let mut backend = MirrorBackend::open(
        BlobClient::new(Arc::clone(&store), follower),
        blob,
        v,
        &Calibration::default(),
    )
    .unwrap();
    while backend.poke_prefetch() {}
    for victim in [2u32, 3, 4, 5] {
        fabric.fail_node(NodeId(victim));
    }
    let got = backend.read(0..IMG).unwrap();
    assert!(got.content_eq(&image));
}

#[test]
fn commit_fails_cleanly_when_target_provider_down() {
    let (fabric, client, blob, v) = setup(1);
    let mut backend = MirrorBackend::open(client, blob, v, &Calibration::default()).unwrap();
    backend.write(0, Payload::from(vec![1u8; 100])).unwrap();
    // Kill a provider; round-robin allocation will hit it for some chunk
    // of a large enough commit.
    fabric.fail_node(NodeId(4));
    backend
        .write(1 << 20, Payload::synth(5, 0, 512 << 10))
        .unwrap();
    let res = backend.snapshot();
    assert!(res.is_err(), "commit must surface the failure");
    // The base version is still fully consistent for re-deployments.
    fabric.recover_node(NodeId(4));
    let got = backend.read(0..100).unwrap();
    assert!(
        got.content_eq(&Payload::from(vec![1u8; 100])),
        "local state intact"
    );
}

/// A replicated deployment with dedup + the cluster index forced on and
/// a fleet of snapshot lineages to collect (tests must not depend on
/// the `BFF_*` environment defaults).
fn setup_gc() -> (
    Arc<LocalFabric>,
    BlobClient,
    BlobId,
    Version,
    Vec<(BlobId, Version)>,
) {
    let fabric = LocalFabric::new(7);
    let compute: Vec<NodeId> = (0..6).map(NodeId).collect();
    let topo = BlobTopology::colocated(&compute, NodeId(6));
    let cfg = BlobConfig {
        chunk_size: 64 << 10,
        replication: 2,
        dedup: true,
        cluster_dedup: true,
        ..Default::default()
    };
    let store = BlobStore::new(cfg, topo, fabric.clone() as Arc<dyn Fabric>);
    let client = BlobClient::new(store, NodeId(0));
    let (blob, v) = client.upload(Payload::synth(0x6C01, 0, IMG)).unwrap();
    // Eight divergent lineages, each with two private snapshots.
    let mut snaps = Vec::new();
    for vm in 0..8u64 {
        let clone = client.clone_blob(blob, v).unwrap();
        let v2 = client
            .write_chunks(
                clone,
                Version(1),
                vec![(vm, Payload::synth(0xD00 + vm, 0, 64 << 10))],
            )
            .unwrap();
        let v3 = client
            .write_chunks(
                clone,
                v2,
                vec![(vm, Payload::synth(0xE00 + vm, 0, 64 << 10))],
            )
            .unwrap();
        snaps.push((clone, v2));
        snaps.push((clone, v3));
    }
    (fabric, client, blob, v, snaps)
}

#[test]
fn gc_release_storm_survives_provider_loss() {
    // A provider dies in the middle of a snapshot-delete storm: the
    // storm must keep going (down replicas are skipped, their refs die
    // with the node), survivors must stay byte-identical, counters must
    // never underflow, and rewriting reclaimed content must still
    // round-trip.
    let (fabric, client, blob, v, snaps) = setup_gc();
    let image = Payload::synth(0x6C01, 0, IMG);
    let stored_before = client.store().total_stored_bytes();
    // First half of the storm with all providers up.
    for &(b, ver) in &snaps[..8] {
        client.delete_snapshot(b, ver).expect("pre-loss delete");
    }
    // Fail-stop one provider mid-storm; releases aimed at it are
    // skipped, everything else proceeds.
    fabric.fail_node(NodeId(3));
    for &(b, ver) in &snaps[8..] {
        client.delete_snapshot(b, ver).expect("mid-loss delete");
    }
    assert!(
        client.store().total_stored_bytes() < stored_before,
        "the storm reclaimed storage despite the loss"
    );
    // The base image survives the storm and the loss (replication 2).
    let got = client.read(blob, v, 0..IMG).unwrap();
    assert!(got.content_eq(&image));
    // Deleted snapshots are gone, not half-alive.
    for &(b, ver) in &snaps {
        assert!(client.read(b, ver, 0..IMG).is_err(), "{b:?}/{ver:?}");
    }
    // Rewriting content identical to reclaimed chunks self-heals any
    // stale index entry (including ones pointing at the dead node).
    let clone = client.clone_blob(blob, v).unwrap();
    let rewrite = Payload::synth(0xD00, 0, 64 << 10);
    let vr = client
        .write_chunks(clone, Version(1), vec![(0, rewrite.clone())])
        .unwrap();
    let got = client.read(clone, vr, 0..(64 << 10)).unwrap();
    assert!(got.content_eq(&rewrite));
    // Double-delete storms on the recovered node never underflow.
    fabric.recover_node(NodeId(3));
    let report = client.delete_snapshot(clone, vr).unwrap();
    assert!(report.released_refs > 0);
    let got = client.read(blob, v, 0..IMG).unwrap();
    assert!(got.content_eq(&image), "base intact after every storm");
}
