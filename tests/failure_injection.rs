//! Failure injection: fail-stop provider losses against the replication
//! knob (§3.1.3: "chunks can be replicated on different local disks" for
//! availability and fault tolerance).

use bff::blobseer::{BlobStore, BlobTopology};
use bff::cloud::backend::{BackendError, ImageBackend, MirrorBackend};
use bff::cloud::params::Calibration;
use bff::prelude::*;
use std::sync::Arc;

const IMG: u64 = 2 << 20;

fn setup(replication: usize) -> (Arc<LocalFabric>, BlobClient, BlobId, Version) {
    let fabric = LocalFabric::new(7);
    let compute: Vec<NodeId> = (0..6).map(NodeId).collect();
    let topo = BlobTopology::colocated(&compute, NodeId(6));
    let cfg = BlobConfig {
        chunk_size: 64 << 10,
        replication,
        ..Default::default()
    };
    let store = BlobStore::new(cfg, topo, fabric.clone() as Arc<dyn Fabric>);
    let client = BlobClient::new(store, NodeId(0));
    let (blob, v) = client.upload(Payload::synth(0xFA11, 0, IMG)).unwrap();
    (fabric, client, blob, v)
}

#[test]
fn replicated_deployment_survives_one_provider_loss() {
    let (fabric, client, blob, v) = setup(2);
    fabric.fail_node(NodeId(3));
    // A VM on node 0 boots the whole image through the mirror.
    let mut backend = MirrorBackend::open(client, blob, v, &Calibration::default()).unwrap();
    let got = backend.read(0..IMG).unwrap();
    assert!(got.content_eq(&Payload::synth(0xFA11, 0, IMG)));
}

#[test]
fn replicated_deployment_survives_any_single_loss() {
    for victim in 1..6u32 {
        let (fabric, client, blob, v) = setup(2);
        fabric.fail_node(NodeId(victim));
        let mut backend = MirrorBackend::open(client, blob, v, &Calibration::default()).unwrap();
        let got = backend.read(0..IMG).unwrap();
        assert!(
            got.content_eq(&Payload::synth(0xFA11, 0, IMG)),
            "victim {victim}"
        );
    }
}

#[test]
fn two_losses_defeat_two_replicas_somewhere() {
    let (fabric, client, blob, v) = setup(2);
    // Adjacent providers hold both replicas of some chunks (consecutive
    // placement), so losing two adjacent nodes loses data.
    fabric.fail_node(NodeId(2));
    fabric.fail_node(NodeId(3));
    let mut backend = MirrorBackend::open(client, blob, v, &Calibration::default()).unwrap();
    let err = backend.read(0..IMG).unwrap_err();
    assert!(matches!(err, BackendError::Blob(_)), "unexpected: {err}");
}

#[test]
fn three_replicas_survive_two_losses() {
    let (fabric, client, blob, v) = setup(3);
    fabric.fail_node(NodeId(2));
    fabric.fail_node(NodeId(3));
    let mut backend = MirrorBackend::open(client, blob, v, &Calibration::default()).unwrap();
    assert!(backend.read(0..IMG).is_ok());
}

#[test]
fn unreplicated_loss_is_detected_not_silent() {
    let (fabric, client, blob, v) = setup(1);
    fabric.fail_node(NodeId(1));
    let mut backend = MirrorBackend::open(client, blob, v, &Calibration::default()).unwrap();
    // Some chunk lived only on node 1: the read must error, never return
    // wrong bytes.
    let result = backend.read(0..IMG);
    assert!(result.is_err());
}

#[test]
fn recovery_restores_service() {
    let (fabric, client, blob, v) = setup(1);
    fabric.fail_node(NodeId(1));
    let mut backend =
        MirrorBackend::open(client.clone(), blob, v, &Calibration::default()).unwrap();
    assert!(backend.read(0..IMG).is_err());
    fabric.recover_node(NodeId(1));
    let got = backend.read(0..IMG).unwrap();
    assert!(got.content_eq(&Payload::synth(0xFA11, 0, IMG)));
}

#[test]
fn commit_fails_cleanly_when_target_provider_down() {
    let (fabric, client, blob, v) = setup(1);
    let mut backend = MirrorBackend::open(client, blob, v, &Calibration::default()).unwrap();
    backend.write(0, Payload::from(vec![1u8; 100])).unwrap();
    // Kill a provider; round-robin allocation will hit it for some chunk
    // of a large enough commit.
    fabric.fail_node(NodeId(4));
    backend
        .write(1 << 20, Payload::synth(5, 0, 512 << 10))
        .unwrap();
    let res = backend.snapshot();
    assert!(res.is_err(), "commit must surface the failure");
    // The base version is still fully consistent for re-deployments.
    fabric.recover_node(NodeId(4));
    let got = backend.read(0..100).unwrap();
    assert!(
        got.content_eq(&Payload::from(vec![1u8; 100])),
        "local state intact"
    );
}
