//! Quickstart: stand up an in-process cloud, upload a VM image, deploy
//! instances lazily, let them diverge, snapshot them all, and download a
//! snapshot as a standalone raw image.
//!
//! Run with: `cargo run --example quickstart`

use bff::prelude::*;

fn main() {
    // A little cloud: 8 compute nodes whose local disks form the storage
    // pool, plus one service node for the managers.
    let compute: Vec<NodeId> = (0..8).map(NodeId).collect();
    let fabric = LocalFabric::new(9);
    let cloud = Cloud::new(
        fabric.clone(),
        compute.clone(),
        NodeId(8),
        BlobConfig {
            chunk_size: 256 << 10,
            ..Default::default()
        },
        Calibration::default(),
    );

    // The client uploads a 64 MB image; it is striped automatically.
    let image = Payload::synth(2026, 0, 64 << 20);
    let (blob, version) = cloud.upload_image(image.clone()).expect("upload");
    println!(
        "uploaded {blob} as snapshot {version} ({} MB)",
        image.len() >> 20
    );
    fabric.stats().reset(); // count deployment traffic only

    // Multideployment: one instance per node. Nothing is copied —
    // instances fetch content on demand as they touch it.
    let mut vms = cloud.deploy(blob, version, &compute).expect("deploy");
    println!(
        "deployed {} instances lazily ({} bytes on the wire so far)",
        vms.len(),
        fabric.stats().total_network_bytes()
    );

    // Each VM boots a little (reads) and writes its own configuration.
    for (i, vm) in vms.iter_mut().enumerate() {
        let _boot = vm.backend.read(0..1 << 20).expect("boot read");
        let config = format!("instance-id = {i}\nrole = worker\n");
        vm.backend
            .write(32 << 20, Payload::from(config.into_bytes()))
            .expect("config write");
    }
    println!(
        "after boot: {:.1} MB fetched on demand (of {} MB x {} instances)",
        fabric.stats().total_network_bytes() as f64 / 1e6,
        image.len() >> 20,
        vms.len()
    );

    // Multisnapshotting: CLONE + COMMIT broadcast to all instances. Every
    // snapshot is a first-class, standalone raw image.
    let snapshots = cloud.snapshot_all(&mut vms).expect("snapshot");
    let report = cloud.storage_report(&snapshots);
    println!(
        "snapshotted {} instances: {:.1} MB stored vs {:.1} MB as full copies ({:.1}% saved)",
        snapshots.len(),
        report.stored_bytes as f64 / 1e6,
        report.naive_full_copy_bytes as f64 / 1e6,
        100.0 * (1.0 - report.stored_bytes as f64 / report.naive_full_copy_bytes as f64)
    );

    // Download one snapshot and check it is the original image plus that
    // instance's own modification — nobody else's.
    let (snap_blob, snap_ver) = snapshots[3];
    let full = cloud.download_image(snap_blob, snap_ver).expect("download");
    let expected = image.overwrite(
        32 << 20,
        Payload::from(b"instance-id = 3\nrole = worker\n".to_vec()),
    );
    assert!(full.content_eq(&expected), "snapshot is byte-exact");
    println!("downloaded snapshot {snap_blob}/{snap_ver}: byte-exact ✓");
}
