//! The real-world application of §5.5: Monte Carlo estimation of π
//! across a set of worker VMs, with a suspend/resume cycle in the middle.
//! Workers persist their intermediate tallies *inside their VM images*;
//! the global snapshot captures them; resuming on fresh nodes picks up
//! exactly where the computation left off — and the final estimate is a
//! genuinely computed π.
//!
//! Run with: `cargo run --example montecarlo_pi`

use bff::prelude::*;
use bff::workloads::montecarlo::estimate_pi;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const STATE_AT: u64 = 4 << 20;
const SAMPLES_PER_WORKER: u64 = 400_000;
const HALF: u64 = SAMPLES_PER_WORKER / 2;

/// Persist (samples_done, inside_count) in the image.
fn save_state(vm: &mut VmHandle, done: u64, inside: u64) {
    let mut buf = Vec::with_capacity(16);
    buf.extend(done.to_le_bytes());
    buf.extend(inside.to_le_bytes());
    vm.backend
        .write(STATE_AT, Payload::from(buf))
        .expect("save state");
}

/// Load the tally back.
fn load_state(vm: &mut VmHandle) -> (u64, u64) {
    let raw = vm
        .backend
        .read(STATE_AT..STATE_AT + 16)
        .expect("load state")
        .materialize();
    (
        u64::from_le_bytes(raw[0..8].try_into().expect("8 bytes")),
        u64::from_le_bytes(raw[8..16].try_into().expect("8 bytes")),
    )
}

/// Sample `count` points, returning how many fell inside the circle.
fn sample(seed: u64, skip: u64, count: u64) -> u64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut inside = 0;
    for i in 0..skip + count {
        let x: f64 = rng.gen_range(-1.0..1.0);
        let y: f64 = rng.gen_range(-1.0..1.0);
        if i >= skip && x * x + y * y <= 1.0 {
            inside += 1;
        }
    }
    inside
}

fn main() {
    let workers: Vec<NodeId> = (0..8).map(NodeId).collect();
    let spare: Vec<NodeId> = (8..16).map(NodeId).collect();
    let fabric = LocalFabric::new(17);
    let cloud = Cloud::new(
        fabric,
        workers.iter().chain(&spare).copied().collect(),
        NodeId(16),
        BlobConfig {
            chunk_size: 64 << 10,
            ..Default::default()
        },
        Calibration::default(),
    );
    let (blob, v) = cloud
        .upload_image(Payload::synth(31415, 0, 8 << 20))
        .expect("upload");

    // Phase 1: deploy on the first node set, compute half the samples,
    // checkpoint the tallies into the images, snapshot everything.
    let mut vms = cloud.deploy(blob, v, &workers).expect("deploy");
    for (i, vm) in vms.iter_mut().enumerate() {
        let inside = sample(1000 + i as u64, 0, HALF);
        save_state(vm, HALF, inside);
    }
    let snaps = cloud.snapshot_all(&mut vms).expect("global snapshot");
    println!(
        "suspended after {HALF} samples/worker; {} snapshots taken",
        snaps.len()
    );
    drop(vms); // original deployment terminated

    // Phase 2: resume every snapshot on a *different* node (spare set) —
    // snapshots are standalone raw images, so any hypervisor would do.
    let mut resumed = cloud.resume(&snaps, &spare).expect("resume");
    let mut total_inside = 0u64;
    let mut total_samples = 0u64;
    for (i, vm) in resumed.iter_mut().enumerate() {
        let (done, inside_so_far) = load_state(vm);
        assert_eq!(done, HALF, "intermediate result survived the move");
        let inside = inside_so_far + sample(1000 + i as u64, done, SAMPLES_PER_WORKER - done);
        total_inside += inside;
        total_samples += SAMPLES_PER_WORKER;
        save_state(vm, SAMPLES_PER_WORKER, inside);
    }
    let pi = 4.0 * total_inside as f64 / total_samples as f64;
    println!(
        "π ≈ {pi:.5} from {total_samples} samples across {} workers (error {:+.5})",
        resumed.len(),
        pi - std::f64::consts::PI
    );
    assert!((pi - std::f64::consts::PI).abs() < 0.01);

    // Sanity: the single-threaded reference estimator agrees in spirit.
    let reference = estimate_pi(SAMPLES_PER_WORKER, 99);
    println!("single-worker reference estimate: {reference:.5}");
}
