//! The large-scale debugging scenario from §3.2 of the paper: capture the
//! state of a distributed application right before a bug manifests, then
//! iterate — analyze the captured snapshots offline, patch them, resume,
//! and repeat until the fix holds. CLONE/COMMIT make each iteration cheap
//! because snapshots share all unmodified content.
//!
//! Run with: `cargo run --example debug_loop`

use bff::prelude::*;

/// Where the app keeps its state inside the image.
const STATE_AT: u64 = 8 << 20;

/// The "application": a counter that corrupts itself at a threshold (the
/// bug we are hunting).
fn app_step(vm: &mut VmHandle, patched: bool) -> u64 {
    let raw = vm
        .backend
        .read(STATE_AT..STATE_AT + 8)
        .expect("read state")
        .materialize();
    let mut counter = u64::from_le_bytes(raw.try_into().expect("8 bytes"));
    counter += 1;
    // The bug: an unpatched binary corrupts the counter at 5.
    if counter == 5 && !patched {
        counter = 0xDEAD;
    }
    vm.backend
        .write(STATE_AT, Payload::from(counter.to_le_bytes().to_vec()))
        .expect("write state");
    counter
}

fn main() {
    let compute: Vec<NodeId> = (0..4).map(NodeId).collect();
    let fabric = LocalFabric::new(5);
    let cloud = Cloud::new(
        fabric,
        compute.clone(),
        NodeId(4),
        BlobConfig {
            chunk_size: 64 << 10,
            ..Default::default()
        },
        Calibration::default(),
    );
    // The uploaded image has the counter initialized to zero.
    let image = Payload::synth(77, 0, 16 << 20)
        .overwrite(STATE_AT, Payload::from(0u64.to_le_bytes().to_vec()));
    let (blob, v) = cloud.upload_image(image).expect("upload");
    let mut vms = cloud.deploy(blob, v, &compute).expect("deploy");

    // Run the app until just before the bug (counter == 4), then take a
    // global snapshot: "capture the state right before the bug happens".
    for step in 1..=4u64 {
        for vm in vms.iter_mut() {
            let c = app_step(vm, false);
            assert_eq!(c, step);
        }
    }
    let checkpoint = cloud.snapshot_all(&mut vms).expect("checkpoint");
    println!(
        "checkpoint taken at counter=4 on {} instances",
        checkpoint.len()
    );

    // Reproduce the bug from the live instances.
    for vm in vms.iter_mut() {
        assert_eq!(app_step(vm, false), 0xDEAD);
    }
    println!("bug reproduced live: counter corrupted to 0xDEAD");

    // Debug loop: resume the checkpoint snapshots (on other nodes, they
    // are standalone images) and try candidate fixes iteratively.
    for (attempt, patched) in [(1, false), (2, true)] {
        let mut lab = cloud
            .resume(&checkpoint, &compute)
            .expect("resume checkpoint");
        let mut ok = true;
        for vm in lab.iter_mut() {
            let c = app_step(vm, patched);
            ok &= c == 5;
        }
        println!(
            "attempt {attempt} (patched={patched}): {}",
            if ok {
                "fix holds, resuming for real"
            } else {
                "still broken, iterating"
            }
        );
        if ok {
            // The fixed run continues from where the app left off.
            for vm in lab.iter_mut() {
                assert_eq!(app_step(vm, patched), 6);
            }
            let fixed = cloud.snapshot_all(&mut lab).expect("snapshot fixed state");
            let report = cloud.storage_report(&fixed);
            println!(
                "resumed past the bug; {} snapshots now stored in {:.1} MB (full copies: {:.1} MB)",
                fixed.len(),
                report.stored_bytes as f64 / 1e6,
                report.naive_full_copy_bytes as f64 / 1e6
            );
            return;
        }
    }
    unreachable!("the patched attempt fixes the bug");
}
