//! Multideployment on the simulated testbed: deploy 16 instances of a
//! 64 MB image with all three strategies from the paper's §5.2 and print
//! the Fig. 4 metrics side by side. This is the same machinery the
//! benchmark binaries run at 110-instance/2 GB scale.
//!
//! Run with: `cargo run --release --example multideployment`

use bff::cloud::experiments::{run_deployment, ExpScale, Strategy};
use bff::cloud::params::Calibration;

fn main() {
    let scale = ExpScale {
        image_len: 64 << 20,
        chunk_size: 256 << 10,
    };
    let n = 16;
    let cal = Calibration::default();

    println!(
        "deploying {n} instances of a {} MB image, three ways:\n",
        scale.image_len >> 20
    );
    println!(
        "{:<24} {:>14} {:>12} {:>12}",
        "strategy", "avg boot (s)", "total (s)", "traffic (GB)"
    );
    let mut totals = Vec::new();
    for strategy in [
        Strategy::Prepropagation,
        Strategy::QcowOverPvfs,
        Strategy::Mirror,
    ] {
        let out = run_deployment(strategy, n, scale, cal, None, 42);
        println!(
            "{:<24} {:>14.2} {:>12.2} {:>12.3}",
            strategy.label(),
            out.avg_boot_s(),
            out.total_s,
            out.traffic_gb
        );
        totals.push(out.total_s);
    }
    println!(
        "\nspeedup of our approach: {:.1}x vs prepropagation, {:.2}x vs qcow2-over-pvfs",
        totals[0] / totals[2],
        totals[1] / totals[2]
    );
}
