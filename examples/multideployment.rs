//! Multideployment on the simulated testbed: deploy 16 instances of a
//! 64 MB image with all three strategies from the paper's §5.2 and print
//! the Fig. 4 metrics side by side. This is the same machinery the
//! benchmark binaries run at 110-instance/2 GB scale.
//!
//! A second section co-locates several VMs per node and shows the
//! node-shared cache module at work: co-located instances share one
//! `NodeContext` (the paper's per-node FUSE process), so only the first
//! VM on a node pays metadata descents, and identical snapshot content
//! commits by reference through the content-digest index.
//!
//! Run with: `cargo run --release --example multideployment`

use bff::cloud::experiments::{run_deployment, ExpScale, Strategy};
use bff::cloud::params::Calibration;
use bff::prelude::*;
use std::sync::Arc;

fn main() {
    let scale = ExpScale {
        image_len: 64 << 20,
        chunk_size: 256 << 10,
    };
    let n = 16;
    let cal = Calibration::default();

    println!(
        "deploying {n} instances of a {} MB image, three ways:\n",
        scale.image_len >> 20
    );
    println!(
        "{:<24} {:>14} {:>12} {:>12}",
        "strategy", "avg boot (s)", "total (s)", "traffic (GB)"
    );
    let mut totals = Vec::new();
    for strategy in [
        Strategy::Prepropagation,
        Strategy::QcowOverPvfs,
        Strategy::Mirror,
    ] {
        let out = run_deployment(strategy, n, scale, cal, None, 42);
        println!(
            "{:<24} {:>14.2} {:>12.2} {:>12.3}",
            strategy.label(),
            out.avg_boot_s(),
            out.total_s,
            out.traffic_gb
        );
        totals.push(out.total_s);
    }
    println!(
        "\nspeedup of our approach: {:.1}x vs prepropagation, {:.2}x vs qcow2-over-pvfs",
        totals[0] / totals[2],
        totals[1] / totals[2]
    );

    colocated_demo();
}

/// Co-located VMs sharing one node's cache module: 4 nodes × 3 VMs each
/// boot the same image, then snapshot identical checkpoint state.
fn colocated_demo() {
    const IMG: u64 = 8 << 20;
    let nodes = 4u32;
    let vms_per_node = 3usize;
    let fabric = LocalFabric::new(nodes as usize + 1);
    let compute: Vec<NodeId> = (0..nodes).map(NodeId).collect();
    let cloud = Cloud::new(
        fabric,
        compute.clone(),
        NodeId(nodes),
        BlobConfig {
            chunk_size: 256 << 10,
            dedup: true,
            ..Default::default()
        },
        Calibration::default(),
    );
    let (blob, v) = cloud
        .upload_image(Payload::synth(7, 0, IMG))
        .expect("upload");

    // 3 VMs per node: only the first boot on each node resolves
    // metadata; its co-located peers ride the shared descriptor cache.
    let mut vms: Vec<VmHandle> = Vec::new();
    for &node in &compute {
        for _ in 0..vms_per_node {
            vms.push(cloud.add_instance(blob, v, node).expect("deploy"));
        }
    }
    for vm in vms.iter_mut() {
        vm.backend.read(0..IMG).expect("boot read");
    }
    let stats = cloud.metrics().cache;
    println!(
        "\nco-located deployment ({nodes} nodes x {vms_per_node} VMs): \
         shared desc-cache hit rate {:.0}% ({} hits / {} misses)",
        100.0 * stats.hit_rate(),
        stats.desc_hits,
        stats.desc_misses
    );

    // Every VM writes the *same* contextualization payload and
    // snapshots: per node, one copy is pushed and the rest commit by
    // reference.
    let stored_before = cloud.store().total_stored_bytes();
    for vm in vms.iter_mut() {
        let ctx_state = Payload::synth(99, 0, 512 << 10);
        vm.backend.write(1 << 20, ctx_state).expect("write");
        vm.snapshot().expect("snapshot");
    }
    let stats = cloud.metrics().cache;
    println!(
        "snapshots: +{:.1} MB stored for {} VMs ({:.1} MB committed by \
         reference via dedup)",
        (cloud.store().total_stored_bytes() - stored_before) as f64 / 1e6,
        vms.len(),
        stats.dedup_reused_bytes as f64 / 1e6,
    );

    // Memory-bound check: Arc::strong_count proves the contexts really
    // are shared per node, not per client.
    let ctx = cloud.node_context(NodeId(0));
    assert!(Arc::strong_count(&ctx) > vms_per_node);
}
